#include "provision/planner.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace hetero::provision {

std::string to_string(InstallMethod method) {
  switch (method) {
    case InstallMethod::kPreinstalled: return "preinstalled";
    case InstallMethod::kVendorLibrary: return "vendor library";
    case InstallMethod::kSystemPackage: return "system package (yum)";
    case InstallMethod::kSourceBuild: return "source build";
  }
  return "?";
}

PlatformState initial_state(const platform::PlatformSpec& spec) {
  PlatformState state;
  if (spec.name == "puma") {
    // The home platform: everything is already there (§VI-A).
    for (const auto& p : package_db()) {
      state.preinstalled.insert(p.name);
    }
    return state;
  }
  if (spec.name == "ellipse") {
    // GNU toolchain present in a compatible version; nothing scientific.
    state.preinstalled = {"gcc", "gfortran", "gnu-make", "autotools",
                          "cmake"};
    state.vendor_provided = {"blas-lapack"};  // ACML 4.0.1
    return state;
  }
  if (spec.name == "lagrange") {
    // Compilers, MPI and vendor BLAS/LAPACK provided by the site (§VI-C).
    state.preinstalled = {"gcc", "gfortran", "gnu-make", "autotools",
                          "cmake", "openmpi"};
    state.vendor_provided = {"blas-lapack"};  // MKL
    return state;
  }
  if (spec.name == "ec2") {
    // Bare image: nothing preinstalled, but root + yum (§VI-D). CMake 2.8
    // was NOT in the repositories and required a source install.
    state.has_root = true;
    state.system_packages = {"gcc", "gfortran", "gnu-make", "autotools",
                             "openmpi"};
    state.extra_steps = {
        {"yum update of the obsolete CentOS 5.4 image", 0.5},
        {"generate + distribute ssh host keys for mpiexec", 0.3},
        {"security group: open intranet TCP ports for MPI", 0.2},
        {"resize 20GB boot partition for mesh staging", 0.5},
        {"create the private AMI with the conditioned stack", 0.5},
    };
    return state;
  }
  throw Error("no provisioning model for platform: " + spec.name);
}

double ProvisionPlan::total_hours() const {
  double h = 0.0;
  for (const auto& a : actions) {
    h += a.hours;
  }
  for (const auto& [step, hours] : extra_steps) {
    h += hours;
  }
  return h;
}

int ProvisionPlan::source_builds() const {
  int n = 0;
  for (const auto& a : actions) {
    n += a.method == InstallMethod::kSourceBuild;
  }
  return n;
}

Table ProvisionPlan::to_table() const {
  Table table({"package", "method", "hours", "note"});
  char buf[32];
  for (const auto& a : actions) {
    std::snprintf(buf, sizeof(buf), "%.2f", a.hours);
    table.add_row({a.package, to_string(a.method), buf, a.note});
  }
  for (const auto& [step, hours] : extra_steps) {
    std::snprintf(buf, sizeof(buf), "%.2f", hours);
    table.add_row({"(platform step)", "manual", buf, step});
  }
  return table;
}

double automated_hours(const ProvisionPlan& plan,
                       const AutomationModel& model) {
  HETERO_REQUIRE(model.residual_fraction >= 0.0 &&
                     model.residual_fraction <= 1.0,
                 "residual fraction must be in [0, 1]");
  return plan.total_hours() * model.residual_fraction;
}

int automation_break_even(const std::vector<ProvisionPlan>& plans,
                          const AutomationModel& model) {
  // Find the smallest k such that authoring + k * automated <= k * manual
  // when provisioning the platforms in the given (repeating) order.
  double manual = 0.0;
  double automated = model.authoring_hours;
  int k = 0;
  const int limit = 1000;
  while (k < limit) {
    if (k > 0 && automated <= manual) {
      return k;
    }
    if (plans.empty()) {
      return 0;
    }
    const ProvisionPlan& plan = plans[static_cast<std::size_t>(k) %
                                      plans.size()];
    manual += plan.total_hours();
    automated += automated_hours(plan, model);
    ++k;
  }
  return limit;
}

ProvisionPlan plan_provisioning(const platform::PlatformSpec& spec,
                                const std::string& target) {
  const PlatformState state = initial_state(spec);
  ProvisionPlan plan;
  plan.platform = spec.name;
  plan.target = target;
  plan.extra_steps = state.extra_steps;

  for (const auto& name : dependency_order(target)) {
    const Package& pkg = package(name);
    ProvisionAction action;
    action.package = name;
    if (state.preinstalled.count(name)) {
      action.method = InstallMethod::kPreinstalled;
      action.hours = 0.0;
      action.note = "already on the platform";
    } else if (state.vendor_provided.count(name)) {
      action.method = InstallMethod::kVendorLibrary;
      action.hours = 0.3;  // locate + link against the vendor stack
      action.note = "vendor-optimized implementation";
    } else if (state.has_root && state.system_packages.count(name)) {
      action.method = InstallMethod::kSystemPackage;
      action.hours = pkg.system_install_hours;
      action.note = "yum install";
    } else {
      action.method = InstallMethod::kSourceBuild;
      action.hours = pkg.source_build_hours;
      action.note = pkg.note;
    }
    plan.actions.push_back(std::move(action));
  }
  return plan;
}

}  // namespace hetero::provision
