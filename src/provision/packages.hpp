#pragma once

/// \file packages.hpp
/// The software stack of §IV-D as a dependency database: LifeV and its
/// third-party scientific libraries, the general-purpose/communication
/// layer, compilers, and deployment tools — everything that had to exist on
/// a target platform before the CFD applications would build.

#include <string>
#include <vector>

namespace hetero::provision {

struct Package {
  std::string name;
  std::string version;
  /// Names of packages that must be present first.
  std::vector<std::string> deps;
  /// Man-hours for an experienced developer to build from source on a new
  /// machine (configure + build + fix the inevitable issues).
  double source_build_hours = 0.5;
  /// Man-hours when a system package manager can install it (root access).
  double system_install_hours = 0.1;
  std::string note;
};

/// All packages, topologically orderable; the application target is
/// "cfd-app" (the two LifeV-based solvers).
const std::vector<Package>& package_db();

const Package& package(const std::string& name);

/// Transitive dependency closure of `target` in dependency-first order
/// (every package appears after all of its dependencies).
std::vector<std::string> dependency_order(const std::string& target);

}  // namespace hetero::provision
