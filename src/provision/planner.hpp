#pragma once

/// \file planner.hpp
/// Provisioning planner: given a target platform's initial state (Table I)
/// and the package database, decide how each dependency gets provided —
/// already there, system package manager, vendor library, or source build —
/// and estimate the man-hour effort, reproducing the §VI porting narrative
/// (puma: nothing to do; ellipse/lagrange: ~8 h of source builds; EC2:
/// about a day including the cloud-specific steps).

#include <set>
#include <string>
#include <vector>

#include "platform/platform_spec.hpp"
#include "provision/packages.hpp"
#include "support/table.hpp"

namespace hetero::provision {

enum class InstallMethod {
  kPreinstalled,
  kVendorLibrary,   // e.g. ACML / MKL BLAS
  kSystemPackage,   // yum (requires root)
  kSourceBuild,
};

std::string to_string(InstallMethod method);

/// What a platform offers before any porting work (derived from Table I).
struct PlatformState {
  std::set<std::string> preinstalled;
  /// Packages a vendor library satisfies (counted as cheap installs).
  std::set<std::string> vendor_provided;
  bool has_root = false;
  /// Packages the system package manager can deliver (needs root).
  std::set<std::string> system_packages;
  /// Cloud-only extra conditioning steps (ssh keys, security group, ...).
  std::vector<std::pair<std::string, double>> extra_steps;
};

/// Initial state of the four paper platforms.
PlatformState initial_state(const platform::PlatformSpec& spec);

struct ProvisionAction {
  std::string package;
  InstallMethod method = InstallMethod::kSourceBuild;
  double hours = 0.0;
  std::string note;
};

struct ProvisionPlan {
  std::string platform;
  std::string target;
  std::vector<ProvisionAction> actions;
  std::vector<std::pair<std::string, double>> extra_steps;

  double total_hours() const;
  int source_builds() const;
  Table to_table() const;
};

/// Plans the provisioning of `target` (default: the paper's applications).
ProvisionPlan plan_provisioning(const platform::PlatformSpec& spec,
                                const std::string& target = "cfd-app");

/// Effort model for scripted provisioning — the paper's stated future work
/// ("use of third party software to address mundane, repeatable tasks
/// (e.g. doit) or predefined images for IaaS could significantly reduce
/// this cost"). Authoring the automation costs once; every subsequent
/// platform pays only a fraction of the manual effort (the non-scriptable
/// interactions with administrators remain).
struct AutomationModel {
  /// One-time cost of writing/validating the provisioning scripts.
  double authoring_hours = 6.0;
  /// Fraction of the manual per-platform effort that remains once
  /// automated (debugging site quirks, admin interactions).
  double residual_fraction = 0.25;
};

/// Per-platform hours when the plan is executed by the automation.
double automated_hours(const ProvisionPlan& plan,
                       const AutomationModel& model);

/// Number of provisioned platforms at which automation breaks even against
/// repeating the manual plans (ceil; 0 when the manual total is zero).
int automation_break_even(const std::vector<ProvisionPlan>& plans,
                          const AutomationModel& model);

}  // namespace hetero::provision
