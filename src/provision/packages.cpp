#include "provision/packages.hpp"

#include <map>
#include <set>

#include "support/error.hpp"

namespace hetero::provision {

const std::vector<Package>& package_db() {
  // Versions follow the porting report in §VI.
  static const std::vector<Package> db = {
      {"gcc", "4.x", {}, 0.3, 0.1, "C/C++ compiler"},
      {"gfortran", "4.x", {"gcc"}, 0.2, 0.1, "Fortran compiler (optional)"},
      {"gnu-make", "3.x", {}, 0.1, 0.05, ""},
      {"autotools", "2.59+", {"gnu-make"}, 0.2, 0.1,
       "libtool/autoconf/automake"},
      {"cmake", "2.8", {"gnu-make"}, 0.5, 0.1,
       "2.8 required; often missing from repositories"},
      {"openmpi", "1.4.4", {"gcc", "gnu-make"}, 1.0, 0.2,
       "MPI toolset; must liaise with the site scheduler"},
      {"blas-lapack", "vendor or source", {"gfortran", "gnu-make"}, 1.4, 0.2,
       "ACML / MKL / GotoBLAS2 1.13 + LAPACK 3.3.1"},
      {"boost", "1.47", {"gcc"}, 1.0, 0.2,
       "smart pointers and memory management"},
      {"hdf5", "1.8.7", {"gcc", "gnu-make"}, 0.8, 0.2,
       "built with the 1.6 compatibility interface"},
      {"parmetis", "3.1.1", {"openmpi", "gnu-make"}, 0.5, 0.2,
       "mesh partitioning"},
      {"suitesparse", "3.6.1", {"blas-lapack", "gnu-make"}, 0.7, 0.2,
       "support library extending Trilinos"},
      {"trilinos", "10.6.4",
       {"cmake", "openmpi", "blas-lapack", "boost", "hdf5", "parmetis",
        "suitesparse"},
       2.5, 0.5, "distributed data structures and solvers"},
      {"lifev", "2.0.0",
       {"trilinos", "parmetis", "hdf5", "boost", "autotools"},
       1.5, 0.5, "the FEM library itself"},
      {"cfd-app", "paper",
       {"lifev", "gnu-make"},
       0.2, 0.2, "update the Makefile and build the two solvers"},
  };
  return db;
}

const Package& package(const std::string& name) {
  for (const auto& p : package_db()) {
    if (p.name == name) {
      return p;
    }
  }
  throw Error("unknown package: " + name);
}

namespace {
void visit(const std::string& name, std::set<std::string>& seen,
           std::vector<std::string>& order,
           std::set<std::string>& in_progress) {
  if (seen.count(name)) {
    return;
  }
  HETERO_REQUIRE(!in_progress.count(name),
                 "package dependency cycle through " + name);
  in_progress.insert(name);
  for (const auto& dep : package(name).deps) {
    visit(dep, seen, order, in_progress);
  }
  in_progress.erase(name);
  seen.insert(name);
  order.push_back(name);
}
}  // namespace

std::vector<std::string> dependency_order(const std::string& target) {
  std::set<std::string> seen;
  std::set<std::string> in_progress;
  std::vector<std::string> order;
  visit(target, seen, order, in_progress);
  return order;
}

}  // namespace hetero::provision
