#pragma once

/// \file cli.hpp
/// Tiny command-line flag parser for the bench and example binaries.
/// Supports `--key=value`, `--key value`, and boolean `--flag` forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetero {

class CliArgs {
 public:
  /// Parses argv; throws hetero::Error on malformed input (a lone "--").
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Non-flag positional arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All flag names that were passed, sorted; lets a driver reject flags
  /// its subcommand does not understand.
  std::vector<std::string> flag_names() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hetero
