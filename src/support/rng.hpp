#pragma once

/// \file rng.hpp
/// Deterministic random number generation.
///
/// Everything stochastic in heterolab (spot market, queue waits, network
/// jitter) draws from an explicitly seeded `Rng` so every experiment is
/// reproducible bit-for-bit. The generator is xoshiro256**, seeded through
/// splitmix64 per the reference implementation.

#include <cstdint>
#include <vector>

namespace hetero {

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (no state caching: one sample per call).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential with the given rate (rate > 0); mean is 1/rate.
  double exponential(double rate);

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Derives an independent child generator; used to hand each simulated
  /// rank / market its own stream without sharing state across threads.
  Rng split();

  /// Fisher–Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& values);

 private:
  std::uint64_t state_[4];
};

}  // namespace hetero
