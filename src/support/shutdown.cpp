#include "support/shutdown.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

namespace hetero::support {

namespace {

std::mutex g_hooks_mutex;
std::map<int, std::function<void()>> g_hooks;
int g_next_token = 1;
std::atomic<bool> g_shutdown_requested{false};

const char* signal_name(int signo) {
  switch (signo) {
    case SIGINT:
      return "SIGINT";
    case SIGTERM:
      return "SIGTERM";
    default:
      return "signal";
  }
}

void run_hooks_newest_first() {
  // Copy under the lock, run outside it: a hook may unregister others.
  std::map<int, std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(g_hooks_mutex);
    hooks = g_hooks;
  }
  for (auto it = hooks.rbegin(); it != hooks.rend(); ++it) {
    try {
      it->second();
    } catch (...) {
      // Shutdown must not die in a hook; keep flushing the rest.
    }
  }
}

}  // namespace

int add_shutdown_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  const int token = g_next_token++;
  g_hooks.emplace(token, std::move(hook));
  return token;
}

void remove_shutdown_hook(int token) {
  std::lock_guard<std::mutex> lock(g_hooks_mutex);
  g_hooks.erase(token);
}

bool shutdown_requested() {
  return g_shutdown_requested.load(std::memory_order_acquire);
}

namespace {

struct Watcher {
  std::thread thread;
  sigset_t previous_mask;
  bool active = false;
};
Watcher g_watcher;

/// Private wake-up signal the destructor uses to stop the sigwait loop.
constexpr int kStopSignal = SIGUSR2;

void watcher_main() {
  sigset_t wait_set;
  sigemptyset(&wait_set);
  sigaddset(&wait_set, SIGINT);
  sigaddset(&wait_set, SIGTERM);
  sigaddset(&wait_set, kStopSignal);
  for (;;) {
    int signo = 0;
    if (sigwait(&wait_set, &signo) != 0) {
      continue;
    }
    if (signo == kStopSignal) {
      return;  // guard destructor: normal exit path
    }
    g_shutdown_requested.store(true, std::memory_order_release);
    run_hooks_newest_first();
    std::fprintf(stderr,
                 "heterolab: interrupted by %s — flushed partial output, "
                 "reaped workers, exiting\n",
                 signal_name(signo));
    std::fflush(stderr);
    ::_exit(128 + signo);
  }
}

}  // namespace

ShutdownGuard::ShutdownGuard() {
  sigset_t block_set;
  sigemptyset(&block_set);
  sigaddset(&block_set, SIGINT);
  sigaddset(&block_set, SIGTERM);
  sigaddset(&block_set, kStopSignal);
  pthread_sigmask(SIG_BLOCK, &block_set, &g_watcher.previous_mask);
  g_watcher.thread = std::thread(watcher_main);
  g_watcher.active = true;
}

ShutdownGuard::~ShutdownGuard() {
  if (g_watcher.active) {
    pthread_kill(g_watcher.thread.native_handle(), kStopSignal);
    g_watcher.thread.join();
    pthread_sigmask(SIG_SETMASK, &g_watcher.previous_mask, nullptr);
    g_watcher.active = false;
  }
}

}  // namespace hetero::support
