#pragma once

/// \file io_util.hpp
/// EINTR- and short-write-safe wrappers around read(2)/write(2), shared by
/// every module that talks to raw file descriptors (the memo store, the
/// JSONL writers, the h5lite container, the service sockets, and the
/// multi-process campaign pipes).
///
/// POSIX allows any read/write to transfer fewer bytes than requested and
/// to fail with EINTR when a signal lands mid-call — both are routine once
/// worker heartbeats (SIGALRM) and supervisor kills are in play. These
/// helpers loop until the full count transferred, the stream ended, or a
/// real error occurred.
///
/// For regression tests, `set_write_hook_for_tests` interposes a failing
/// writer under `write_all` so short writes and EINTR storms can be forced
/// deterministically without a signal generator.

#include <sys/types.h>

#include <cstddef>

namespace hetero::support {

/// Writes all `size` bytes to `fd`, retrying on EINTR and partial writes.
/// Returns true on success; false on a real write error (errno preserved).
bool write_all(int fd, const void* data, std::size_t size);

/// Reads exactly `size` bytes from `fd`, retrying on EINTR and short reads.
/// Returns the number of bytes actually read: `size` on success, less when
/// the stream ended early (EOF), and -1 on a real read error.
ssize_t read_full(int fd, void* data, std::size_t size);

/// Test hook: replaces the write(2) call under write_all. nullptr restores
/// the real syscall. The hook sees (fd, data, size) and returns like
/// write(2) — so tests can return short counts, or -1 with errno = EINTR,
/// and assert that write_all still lands every byte. Not thread-safe;
/// install/reset around the test body only.
using WriteHook = ssize_t (*)(int fd, const void* data, std::size_t size);
void set_write_hook_for_tests(WriteHook hook);

}  // namespace hetero::support
