#include "support/error.hpp"

#include <sstream>

namespace hetero::detail {

void throw_error(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "heterolab: check failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace hetero::detail
