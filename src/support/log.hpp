#pragma once

/// \file log.hpp
/// Minimal leveled logger. Logging is process-global and off by default so
/// tests and benches stay quiet; examples turn it on for narration.

#include <sstream>
#include <string>

namespace hetero {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace hetero

#define HETERO_LOG(level, stream_expr)                          \
  do {                                                          \
    if (static_cast<int>(level) >=                              \
        static_cast<int>(::hetero::log_level())) {              \
      std::ostringstream hetero_log_os;                         \
      hetero_log_os << stream_expr;                             \
      ::hetero::detail::log_emit(level, hetero_log_os.str());   \
    }                                                           \
  } while (false)

#define HETERO_INFO(stream_expr) HETERO_LOG(::hetero::LogLevel::kInfo, stream_expr)
#define HETERO_WARN(stream_expr) HETERO_LOG(::hetero::LogLevel::kWarn, stream_expr)
#define HETERO_DEBUG(stream_expr) HETERO_LOG(::hetero::LogLevel::kDebug, stream_expr)
