#pragma once

/// \file record_log.hpp
/// Append-only checksummed record log — the shared on-disk format behind
/// `svc::MemoStore` and the per-worker result shards of the multi-process
/// campaign backend (`hetero::proc`).
///
/// The file is a flat sequence of records
///
///   [magic u32 "HMS1"][key_len u32][value_len u32][checksum u64][key][value]
///
/// (little-endian, checksum = chained splitmix64 over key+value bytes and
/// their lengths). Crash safety comes from *recovery*, not per-record
/// fsync: open() replays the log and, at the first damaged record — a torn
/// tail from a kill, a flipped byte — drops that record and everything
/// after it (ftruncate), keeping every intact record before it in service.
///
/// Multi-process safety: the fd is opened O_APPEND so concurrent writers
/// from different processes never interleave at a stale offset, and every
/// append/recover takes an advisory flock(2) — two processes appending to
/// the same log each land whole records (the contention tests exercise
/// exactly this). flock is per open-file-description, so threads of one
/// process must still serialize externally (MemoStore holds its own mutex).

#include <cstdint>
#include <functional>
#include <string>

namespace hetero::support {

struct RecordLogStats {
  /// Intact records replayed at open.
  std::uint64_t recovered_records = 0;
  /// Bytes of damaged suffix truncated off the log at open.
  std::uint64_t dropped_bytes = 0;
};

/// Thin, non-thread-safe handle on one log file. An empty path is a null
/// log: append() is a no-op and recover() reports nothing.
class RecordLog {
 public:
  explicit RecordLog(std::string path);
  /// fsyncs and closes.
  ~RecordLog();

  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Replays every intact record through `sink` (in file order) and
  /// truncates the damaged suffix, all under an exclusive flock. Call once
  /// after construction; safe to call again to pick up records appended by
  /// other processes since (already-seen records are replayed again).
  RecordLogStats recover(
      const std::function<void(std::string key, std::string value)>& sink);

  /// Appends one record under an exclusive flock (whole record, single
  /// write_all on an O_APPEND fd — atomic with respect to other appenders).
  void append(const std::string& key, const std::string& value);

  /// fsyncs the log. No-op for a null log.
  void flush();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Checksum of a record payload: chained splitmix64 over 8-byte chunks of
/// key and value plus their lengths. Exposed for the corruption tests.
std::uint64_t record_checksum(const std::string& key,
                              const std::string& value);

}  // namespace hetero::support
