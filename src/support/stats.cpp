#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "support/error.hpp"

namespace hetero {

void SampleStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void SampleStats::merge(const SampleStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleStats::mean() const {
  HETERO_REQUIRE(count_ > 0, "mean() of empty SampleStats");
  return mean_;
}

double SampleStats::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double SampleStats::min() const {
  HETERO_REQUIRE(count_ > 0, "min() of empty SampleStats");
  return min_;
}

double SampleStats::max() const {
  HETERO_REQUIRE(count_ > 0, "max() of empty SampleStats");
  return max_;
}

double percentile(std::vector<double> values, double q) {
  HETERO_REQUIRE(!values.empty(), "percentile() of empty sample");
  HETERO_REQUIRE(q >= 0.0 && q <= 1.0, "percentile() requires q in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  HETERO_REQUIRE(hi > lo, "Histogram requires hi > lo");
  HETERO_REQUIRE(bins >= 1, "Histogram requires at least one bin");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::add(double value) {
  const double f = (value - lo_) / (hi_ - lo_);
  int bin = static_cast<int>(f * static_cast<double>(counts_.size()));
  bin = std::max(0, std::min(bin, bins() - 1));
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(int bin) const {
  HETERO_REQUIRE(bin >= 0 && bin < bins(), "Histogram bin out of range");
  return counts_[static_cast<std::size_t>(bin)];
}

double Histogram::bin_lo(int bin) const {
  return lo_ + (hi_ - lo_) * bin / bins();
}

double Histogram::bin_hi(int bin) const {
  return lo_ + (hi_ - lo_) * (bin + 1) / bins();
}

std::string Histogram::render(int width) const {
  HETERO_REQUIRE(width >= 1, "Histogram render width must be >= 1");
  std::size_t peak = 1;
  for (std::size_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char buf[96];
  for (int b = 0; b < bins(); ++b) {
    const auto bar = static_cast<int>(
        static_cast<double>(bin_count(b)) / static_cast<double>(peak) * width);
    std::snprintf(buf, sizeof(buf), "[%9.1f, %9.1f) %6zu  ", bin_lo(b),
                  bin_hi(b), bin_count(b));
    out += buf;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

double mean_after_warmup(const std::vector<double>& values,
                         std::size_t warmup) {
  HETERO_REQUIRE(values.size() > warmup,
                 "mean_after_warmup(): not enough samples past warmup");
  double sum = 0.0;
  for (std::size_t i = warmup; i < values.size(); ++i) {
    sum += values[i];
  }
  return sum / static_cast<double>(values.size() - warmup);
}

}  // namespace hetero
