#include "support/rng.hpp"

#include <cmath>
#include <numbers>

#include "support/error.hpp"

namespace hetero {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro state must not be all-zero; splitmix64 guarantees that in
  // practice and also decorrelates nearby seeds.
  for (auto& word : state_) {
    word = splitmix64(seed);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HETERO_REQUIRE(lo <= hi, "uniform(lo,hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HETERO_REQUIRE(lo <= hi, "uniform_int(lo,hi) requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) {
    draw = next_u64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  // Box–Muller; u1 is kept away from 0 so log() stays finite.
  double u1 = uniform();
  while (u1 <= 1e-300) {
    u1 = uniform();
  }
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double sigma) {
  HETERO_REQUIRE(sigma >= 0.0, "normal() requires sigma >= 0");
  return mean + sigma * normal();
}

double Rng::exponential(double rate) {
  HETERO_REQUIRE(rate > 0.0, "exponential() requires rate > 0");
  double u = uniform();
  while (u <= 1e-300) {
    u = uniform();
  }
  return -std::log(u) / rate;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  HETERO_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli() requires p in [0,1]");
  return uniform() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

void Rng::shuffle(std::vector<std::size_t>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace hetero
