#include "support/io_util.hpp"

#include <cerrno>
#include <unistd.h>

namespace hetero::support {

namespace {
WriteHook g_write_hook = nullptr;
}  // namespace

void set_write_hook_for_tests(WriteHook hook) { g_write_hook = hook; }

bool write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = g_write_hook != nullptr
                          ? g_write_hook(fd, p + written, size - written)
                          : ::write(fd, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      // write(2) returning 0 for a non-zero count is not progress; treat it
      // as an error rather than spinning.
      errno = EIO;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t read_full(int fd, void* data, std::size_t size) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return got > 0 ? static_cast<ssize_t>(got) : -1;
    }
    if (n == 0) {
      break;  // EOF
    }
    got += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace hetero::support
