#pragma once

/// \file error.hpp
/// Error handling primitives shared by every heterolab module.
///
/// Policy (follows C++ Core Guidelines E.2/E.3): programming errors and
/// violated preconditions throw `hetero::Error` carrying the failed
/// expression and source location; callers that can recover catch it,
/// everything else terminates with a readable message.

#include <stdexcept>
#include <string>

namespace hetero {

/// Exception thrown by HETERO_REQUIRE / HETERO_CHECK and by modules that
/// detect unrecoverable misuse (bad arguments, broken invariants).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
/// Builds the message and throws; out-of-line so the macro stays cheap.
[[noreturn]] void throw_error(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace hetero

/// Precondition / invariant check that is always on (release included).
/// `msg` is a string (or string expression) appended to the report.
#define HETERO_REQUIRE(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::hetero::detail::throw_error(#expr, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (false)

/// Internal consistency check; same behaviour as HETERO_REQUIRE but signals
/// a heterolab bug rather than caller misuse.
#define HETERO_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::hetero::detail::throw_error(#expr, __FILE__, __LINE__,             \
                                    "internal invariant violated");        \
    }                                                                      \
  } while (false)
