#include "support/cli.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace hetero {

CliArgs::CliArgs(int argc, const char* const* argv) {
  HETERO_REQUIRE(argc >= 1, "CliArgs requires argv[0]");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    HETERO_REQUIRE(arg.size() > 2, "lone '--' is not a valid flag");
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";  // boolean flag
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return flags_.count(key) != 0;
}

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [key, value] : flags_) {
    names.push_back(key);
  }
  return names;
}

std::string CliArgs::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  HETERO_REQUIRE(end != nullptr && *end == '\0',
                 "flag --" + key + " is not an integer: " + it->second);
  return value;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  HETERO_REQUIRE(end != nullptr && *end == '\0',
                 "flag --" + key + " is not a number: " + it->second);
  return value;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  throw Error("flag --" + key + " is not a boolean: " + v);
}

}  // namespace hetero
