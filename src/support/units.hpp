#pragma once

/// \file units.hpp
/// Human-readable formatting for the quantities heterolab reports:
/// bytes, seconds, rates, and dollar amounts.

#include <cstdint>
#include <string>

namespace hetero {

/// "1.5 KiB", "2.0 GiB" etc. (binary prefixes).
std::string format_bytes(std::uint64_t bytes);

/// "12.3 us", "4.56 ms", "7.8 s", "2.1 min", "3.4 h".
std::string format_seconds(double seconds);

/// "9.6 Gbit/s" style link-rate formatting (decimal prefixes, as vendors do).
std::string format_bitrate(double bits_per_second);

/// Cents with the paper's style: "2.3¢" below a dollar, "$2.40" above.
std::string format_money(double dollars);

/// Conversion constants.
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double kSecondsPerHour = 3600.0;

}  // namespace hetero
