#pragma once

/// \file hash.hpp
/// Stateless 64-bit mixing helpers (splitmix64 finalizer). Used wherever a
/// *random-looking but order-independent* decision is needed: fault plans and
/// network-degradation windows hash (seed, salt, coordinates) instead of
/// drawing from a sequential Rng, so the answer for any cell is the same no
/// matter which thread asks first — the backbone of the byte-identical
/// `--jobs 1` vs `--jobs 8` guarantee.

#include <cstdint>

namespace hetero {

/// splitmix64 finalizer: bijective avalanche mix of a 64-bit word.
inline std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Folds `value` into `seed`; chain to hash tuples of coordinates.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return hash_mix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                          (seed >> 2)));
}

/// Maps a hash to [0, 1) with 53 bits of precision.
inline double hash_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace hetero
