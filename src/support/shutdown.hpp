#pragma once

/// \file shutdown.hpp
/// Graceful SIGINT/SIGTERM handling for the CLI entry points.
///
/// A Ctrl-C used to kill `heterolab run`/`serve` wherever it stood:
/// buffered JSONL tails lost, worker processes orphaned, memo stores
/// unsynced. The ShutdownGuard turns those signals into an orderly exit:
/// it blocks SIGINT/SIGTERM in the installing thread (every thread spawned
/// after inherits the mask) and runs a dedicated watcher thread in
/// sigwait. When a signal arrives the watcher runs the registered hooks
/// newest-first — flush and fsync writers, SIGKILL+reap campaign workers —
/// prints a clear message to stderr, and _exits with the conventional
/// 128+signo status.
///
/// Hooks run on the watcher thread (a normal thread, not a signal
/// handler), so they may allocate, lock, and do real I/O — but they race
/// the interrupted main thread, so they must be safe against concurrent
/// progress (kill(2), fsync(2), and flag flips are; complex teardown is
/// not). Keep them small.

#include <functional>

namespace hetero::support {

/// Registers a cleanup hook; returns a token for remove_shutdown_hook.
/// Hooks run newest-first on shutdown. Safe without a ShutdownGuard (the
/// hook is simply never invoked).
int add_shutdown_hook(std::function<void()> hook);
void remove_shutdown_hook(int token);

/// True once a shutdown signal was observed (cooperative loops poll this).
bool shutdown_requested();

/// Installs the watcher. Construct once, early in main(), while the
/// process is still single-threaded. Destruction stops the watcher and
/// restores the signal mask.
class ShutdownGuard {
 public:
  ShutdownGuard();
  ~ShutdownGuard();

  ShutdownGuard(const ShutdownGuard&) = delete;
  ShutdownGuard& operator=(const ShutdownGuard&) = delete;
};

}  // namespace hetero::support
