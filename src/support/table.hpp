#pragma once

/// \file table.hpp
/// Column-aligned text tables with CSV and Markdown renderers. The bench
/// harness prints every paper table/figure series through this type so the
/// output format is uniform and machine-readable.

#include <ostream>
#include <string>
#include <vector>

namespace hetero {

/// A rectangular table of strings with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(std::size_t i) const;

  /// Pretty column-aligned rendering (right-aligns numeric-looking cells).
  void render_text(std::ostream& os) const;
  void render_csv(std::ostream& os) const;
  void render_markdown(std::ostream& os) const;

  std::string to_text() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers used when filling tables.
std::string fmt_double(double value, int precision);
std::string fmt_usd(double dollars);

}  // namespace hetero
