#include "support/record_log.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/io_util.hpp"

namespace hetero::support {

namespace {

constexpr std::uint32_t kMagic = 0x484D5331;  // "HMS1"
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t checksum_bytes(std::uint64_t h, const std::string& bytes) {
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, bytes.data() + i, 8);
    h = hash_combine(h, chunk);
  }
  std::uint64_t tail = 0;
  for (std::size_t j = i; j < bytes.size(); ++j) {
    tail = (tail << 8) | static_cast<unsigned char>(bytes[j]);
  }
  return hash_combine(h, tail);
}

/// flock(2) with EINTR retry; LOCK_UN never blocks.
void flock_retry(int fd, int op) {
  while (::flock(fd, op) != 0) {
    HETERO_REQUIRE(errno == EINTR, "RecordLog: flock failed");
  }
}

struct ScopedFlock {
  int fd;
  explicit ScopedFlock(int fd_in) : fd(fd_in) { flock_retry(fd, LOCK_EX); }
  ~ScopedFlock() { ::flock(fd, LOCK_UN); }
};

}  // namespace

std::uint64_t record_checksum(const std::string& key,
                              const std::string& value) {
  std::uint64_t h = hash_combine(key.size(), value.size());
  h = checksum_bytes(h, key);
  return checksum_bytes(h, value);
}

RecordLog::RecordLog(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    return;
  }
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  HETERO_REQUIRE(fd_ >= 0, "RecordLog: cannot open log file: " + path_);
}

RecordLog::~RecordLog() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

RecordLogStats RecordLog::recover(
    const std::function<void(std::string key, std::string value)>& sink) {
  RecordLogStats stats;
  if (fd_ < 0) {
    return stats;
  }
  ScopedFlock lock(fd_);
  HETERO_REQUIRE(::lseek(fd_, 0, SEEK_SET) == 0,
                 "RecordLog: cannot seek log file: " + path_);
  std::string data;
  {
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) {
        continue;
      }
      HETERO_REQUIRE(n >= 0, "RecordLog: cannot read log file: " + path_);
      if (n == 0) {
        break;
      }
      data.append(buf, static_cast<std::size_t>(n));
    }
  }
  std::size_t good = 0;
  while (good + kHeaderBytes <= data.size()) {
    const char* p = data.data() + good;
    if (get_u32(p) != kMagic) {
      break;
    }
    const std::uint32_t key_len = get_u32(p + 4);
    const std::uint32_t value_len = get_u32(p + 8);
    const std::uint64_t checksum = get_u64(p + 12);
    const std::size_t total =
        kHeaderBytes + static_cast<std::size_t>(key_len) + value_len;
    if (good + total > data.size()) {
      break;  // torn tail: the record was cut off mid-write
    }
    std::string key(data, good + kHeaderBytes, key_len);
    std::string value(data, good + kHeaderBytes + key_len, value_len);
    if (record_checksum(key, value) != checksum) {
      break;  // flipped bytes anywhere in the record
    }
    sink(std::move(key), std::move(value));
    good += total;
    ++stats.recovered_records;
  }
  if (good < data.size()) {
    stats.dropped_bytes = data.size() - good;
    HETERO_REQUIRE(::ftruncate(fd_, static_cast<off_t>(good)) == 0,
                   "RecordLog: cannot truncate damaged log tail: " + path_);
  }
  return stats;
}

void RecordLog::append(const std::string& key, const std::string& value) {
  if (fd_ < 0) {
    return;
  }
  std::string record;
  record.reserve(kHeaderBytes + key.size() + value.size());
  put_u32(record, kMagic);
  put_u32(record, static_cast<std::uint32_t>(key.size()));
  put_u32(record, static_cast<std::uint32_t>(value.size()));
  put_u64(record, record_checksum(key, value));
  record += key;
  record += value;
  ScopedFlock lock(fd_);
  HETERO_REQUIRE(write_all(fd_, record.data(), record.size()),
                 "RecordLog: cannot append to log file: " + path_);
}

void RecordLog::flush() {
  if (fd_ >= 0) {
    HETERO_REQUIRE(::fsync(fd_) == 0,
                   "RecordLog: cannot fsync log file: " + path_);
  }
}

}  // namespace hetero::support
