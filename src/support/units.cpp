#include "support/units.hpp"

#include <cmath>
#include <cstdio>

namespace hetero {

namespace {
std::string fmt(const char* format, double value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value, suffix);
  return buf;
}
}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  const char* suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int idx = 0;
  while (value >= 1024.0 && idx < 4) {
    value /= 1024.0;
    ++idx;
  }
  return fmt(idx == 0 ? "%.0f %s" : "%.2f %s", value, suffixes[idx]);
}

std::string format_seconds(double seconds) {
  const double magnitude = std::fabs(seconds);
  if (magnitude < 1e-3) {
    return fmt("%.2f %s", seconds * 1e6, "us");
  }
  if (magnitude < 1.0) {
    return fmt("%.2f %s", seconds * 1e3, "ms");
  }
  if (magnitude < 120.0) {
    return fmt("%.2f %s", seconds, "s");
  }
  if (magnitude < 7200.0) {
    return fmt("%.1f %s", seconds / 60.0, "min");
  }
  return fmt("%.2f %s", seconds / 3600.0, "h");
}

std::string format_bitrate(double bits_per_second) {
  const char* suffixes[] = {"bit/s", "kbit/s", "Mbit/s", "Gbit/s"};
  double value = bits_per_second;
  int idx = 0;
  while (value >= 1000.0 && idx < 3) {
    value /= 1000.0;
    ++idx;
  }
  return fmt("%.1f %s", value, suffixes[idx]);
}

std::string format_money(double dollars) {
  char buf[64];
  if (std::fabs(dollars) < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f cents", dollars * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "$%.2f", dollars);
  }
  return buf;
}

}  // namespace hetero
