#include "support/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace hetero {

namespace {
bool looks_numeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '$' && c != '%' && c != ',') {
      return false;
    }
  }
  return digit_seen;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HETERO_REQUIRE(!header_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  HETERO_REQUIRE(cells.size() == header_.size(),
                 "Table row width does not match header");
  rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  HETERO_REQUIRE(i < rows_.size(), "Table row index out of range");
  return rows_[i];
}

void Table::render_text(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = width[c] - row[c].size();
      os << (c == 0 ? "" : "  ");
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

void Table::render_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::render_markdown(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (const auto& cell : row) {
      os << ' ' << cell << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "---|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string Table::to_text() const {
  std::ostringstream os;
  render_text(os);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  render_csv(os);
  return os.str();
}

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_usd(double dollars) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "$%.4f", dollars);
  return buf;
}

}  // namespace hetero
