#pragma once

/// \file timer.hpp
/// Wall-clock stopwatch (steady clock). Used only for host-side measurement
/// (kernel calibration, bench self-timing); simulated platform time lives in
/// simmpi::SimClock.

#include <chrono>

namespace hetero {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hetero
