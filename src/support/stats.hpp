#pragma once

/// \file stats.hpp
/// Streaming and batch statistics used by timing collectors. The paper
/// discards the first iterations (MPI start-up artifacts) and reports
/// averages; `SampleStats` supports exactly that workflow.

#include <cstddef>
#include <string>
#include <vector>

namespace hetero {

/// Accumulates scalar samples; mean/variance use Welford's algorithm so the
/// results are stable for long runs.
class SampleStats {
 public:
  void add(double value);

  /// Merges another accumulator (parallel reduction of per-rank stats).
  void merge(const SampleStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample standard deviation (n-1); zero when fewer than two samples.
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation between order
/// statistics); `q` in [0,1]. The input is copied and sorted.
double percentile(std::vector<double> values, double q);

/// Arithmetic mean of `values` after dropping the first `warmup` entries —
/// the paper's "discard the first 5 iterations" averaging rule.
double mean_after_warmup(const std::vector<double>& values,
                         std::size_t warmup);

/// Fixed-range histogram with linear bins; samples outside [lo, hi) land in
/// the edge bins. Renders as ASCII bars for the distribution benches.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double value);
  std::size_t count() const { return total_; }
  std::size_t bin_count(int bin) const;
  double bin_lo(int bin) const;
  double bin_hi(int bin) const;
  int bins() const { return static_cast<int>(counts_.size()); }

  /// One line per bin: "[lo, hi)  count  ####…" scaled to `width` chars.
  std::string render(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hetero
