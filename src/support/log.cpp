#include "support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace hetero {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  // Ranks run as threads; serialize emission so lines do not interleave.
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace hetero
