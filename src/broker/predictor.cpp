#include "broker/predictor.hpp"

#include "core/campaign.hpp"
#include "platform/platform_spec.hpp"
#include "provision/planner.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace hetero::broker {

namespace {

double effective_seconds(const Prediction& p, const JobRequest& request) {
  double s = p.queue_wait_s + p.run_s;
  if (request.include_provisioning) {
    s += p.provisioning_hours * kSecondsPerHour;
  }
  return s;
}

}  // namespace

Predictor::Predictor(std::uint64_t seed)
    : owned_engine_(std::make_unique<core::CampaignEngine>(
          seed, core::CampaignEngineOptions{.jobs = 1})),
      engine_(owned_engine_.get()) {}

Predictor::Predictor(core::CampaignEngine& engine) : engine_(&engine) {}

Prediction Predictor::predict(const Candidate& candidate,
                              const JobRequest& request) {
  if (candidate.strategy == Ec2Strategy::kSpotCampaign) {
    return predict_campaign(candidate, request);
  }
  core::Experiment e;
  e.app = request.app;
  e.platform = candidate.platform;
  e.ranks = candidate.ranks;
  e.cells_per_rank_axis = candidate.cells_per_rank_axis;
  e.mode = core::Mode::kModeled;
  e.ec2_spot_mix = candidate.strategy == Ec2Strategy::kSpotMix;
  e.ec2_placement_groups = candidate.placement_groups;
  e.ec2_spot_bid_usd = candidate.spot_bid_usd;
  const auto r = engine_->run(e);

  Prediction p;
  p.candidate = candidate;
  p.launched = r.launched;
  p.failure_reason = r.failure_reason;
  p.provisioning_hours = r.provisioning_hours;
  if (!r.launched) {
    return p;
  }
  p.queue_wait_s = r.queue_wait_s;
  p.seconds_per_iteration = r.iteration.total_s;
  p.run_s = r.iteration.total_s * request.iterations;
  p.cost_usd = r.cost_per_iteration_usd * request.iterations;
  p.hosts = r.hosts;
  p.spot_hosts = r.spot_hosts;
  if (p.candidate.strategy == Ec2Strategy::kSpotMix && p.hosts > 0) {
    p.risk_usd = p.cost_usd * static_cast<double>(p.spot_hosts) /
                 static_cast<double>(p.hosts);
  }
  p.effective_s = effective_seconds(p, request);
  return p;
}

Prediction Predictor::predict_resumed(const Candidate& candidate,
                                      const JobRequest& request,
                                      const ResumeState& resume) {
  HETERO_REQUIRE(resume.iterations_total >= 1,
                 "resumed prediction needs iterations_total >= 1");
  HETERO_REQUIRE(
      resume.iterations_done >= 0 &&
          resume.iterations_done <= resume.iterations_total,
      "resumed prediction: iterations_done must be within the campaign");
  JobRequest remaining = request;
  remaining.iterations = resume.iterations_total - resume.iterations_done;
  if (remaining.iterations == 0) {
    remaining.iterations = 1;  // predict() needs work; scale to zero below
  }
  Prediction p = predict(candidate, remaining);
  const int left = resume.iterations_total - resume.iterations_done;
  if (!p.launched) {
    return p;
  }
  if (left == 0) {
    p.run_s = 0.0;
    p.cost_usd = 0.0;
    p.risk_usd = 0.0;
  }
  if (resume.same_platform) {
    // The job is already running here: no fresh queue wait, and the live
    // pace beats the model. Cost scales with the pace because every
    // platform bills linearly in seconds.
    p.queue_wait_s = 0.0;
    if (resume.observed_seconds_per_iteration > 0.0 &&
        p.seconds_per_iteration > 0.0) {
      const double drift =
          resume.observed_seconds_per_iteration / p.seconds_per_iteration;
      p.seconds_per_iteration = resume.observed_seconds_per_iteration;
      p.run_s *= drift;
      p.cost_usd *= drift;
      p.risk_usd *= drift;
    }
  }
  p.effective_s = effective_seconds(p, request);
  return p;
}

Prediction Predictor::predict_campaign(const Candidate& candidate,
                                       const JobRequest& request) {
  core::CampaignConfig config;
  config.app = request.app;
  config.ranks = candidate.ranks;
  config.cells_per_rank_axis = candidate.cells_per_rank_axis;
  config.iterations = request.iterations;
  config.checkpoint_interval = candidate.checkpoint_interval;
  config.use_spot = true;
  config.spot_bid_usd = candidate.spot_bid_usd;
  config.seed = engine_->seed();
  const auto r = core::simulate_ec2_campaign(config);

  const auto& spec = platform::ec2();
  Prediction p;
  p.candidate = candidate;
  p.launched = r.completed;
  p.provisioning_hours = provision::plan_provisioning(spec).total_hours();
  // The simulated wall clock already contains boot and re-acquisition
  // delays, so the campaign has no separate queue-wait term.
  p.run_s = r.wall_clock_s;
  p.seconds_per_iteration = r.wall_clock_s / request.iterations;
  p.cost_usd = r.billed_usd;
  p.hosts = (candidate.ranks + spec.cores_per_node() - 1) /
            spec.cores_per_node();
  p.spot_hosts = r.initial_spot_hosts;
  p.interruptions = r.interruptions;
  const double total_done = static_cast<double>(request.iterations) +
                            static_cast<double>(r.iterations_redone);
  if (total_done > 0.0) {
    p.risk_usd =
        r.billed_usd * static_cast<double>(r.iterations_redone) / total_done;
  }
  p.effective_s = effective_seconds(p, request);
  return p;
}

}  // namespace hetero::broker
