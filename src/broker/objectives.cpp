#include "broker/objectives.hpp"

#include "support/error.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace hetero::broker {

Objective min_time() {
  return {"time", "minimize production run wall clock",
          [](const Prediction& p) { return p.run_s; }};
}

Objective min_cost() {
  return {"cost", "minimize total dollar cost",
          [](const Prediction& p) { return p.cost_usd; }};
}

Objective min_effective_time() {
  return {"effective",
          "minimize effective time-to-solution (wait + effort + run)",
          [](const Prediction& p) { return p.effective_s; }};
}

Objective weighted_blend(double time_weight, double cost_weight) {
  HETERO_REQUIRE(time_weight >= 0.0 && cost_weight >= 0.0 &&
                     time_weight + cost_weight > 0.0,
                 "blend needs nonnegative weights with a positive sum");
  return {"blend",
          "minimize " + fmt_double(time_weight, 2) + " x effective hours + " +
              fmt_double(cost_weight, 2) + " x dollars",
          [time_weight, cost_weight](const Prediction& p) {
            return time_weight * p.effective_s / kSecondsPerHour +
                   cost_weight * p.cost_usd;
          }};
}

Objective objective_by_name(const std::string& name) {
  if (name == "time") {
    return min_time();
  }
  if (name == "cost") {
    return min_cost();
  }
  if (name == "effective") {
    return min_effective_time();
  }
  if (name == "blend") {
    return weighted_blend(1.0, 1.0);
  }
  throw Error("unknown objective: " + name +
              " (expected time|cost|effective|blend)");
}

}  // namespace hetero::broker
