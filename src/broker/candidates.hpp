#pragma once

/// \file candidates.hpp
/// Deployment-candidate enumeration: every builtin platform crossed with
/// the feasible rank counts, plus the EC2-specific acquisition strategies
/// (on-demand in a single placement group, spot mix over 1–4 groups, and a
/// checkpointed spot campaign). Launch limits (ellipse's >512-rank mpiexec
/// failure, lagrange's IB cap above 343 ranks) and problem-split
/// feasibility are applied here so every surviving candidate can at least
/// be predicted; constraint filtering happens later, with reasons.

#include <string>
#include <vector>

#include "broker/job_request.hpp"

namespace hetero::broker {

/// How an EC2 assembly is acquired; kNone for the fixed platforms.
enum class Ec2Strategy { kNone, kOnDemand, kSpotMix, kSpotCampaign };

std::string to_string(Ec2Strategy strategy);

struct Candidate {
  std::string platform;
  int ranks = 1;
  /// Elements per axis per rank of this split.
  int cells_per_rank_axis = 20;
  Ec2Strategy strategy = Ec2Strategy::kNone;
  /// Spot mix: placement groups the request is spread over (1–4).
  int placement_groups = 1;
  /// Spot campaign: iterations between checkpoints.
  int checkpoint_interval = 25;
  double spot_bid_usd = 1.20;

  /// "lagrange @343" / "ec2/spot-mix x4 @1000" — stable display key.
  std::string label() const;
};

/// Rank counts the broker sweeps when the request does not fix one: the
/// paper's cubic process counts 1..1000.
std::vector<int> candidate_rank_counts(const JobRequest& request);

/// Elements per axis per rank when `total_elements` are split over `ranks`
/// cubic subdomains (rounded; never below 1). Returns
/// request.cells_per_rank_axis when the request has no total size.
int split_cells_per_rank_axis(const JobRequest& request, int ranks);

/// All candidates worth predicting for this request. Platform launch
/// limits are respected (a platform never appears at a rank count its
/// scheduler cannot start) and splits finer than 2 cells per rank axis are
/// dropped; everything else survives so that constraint violations can be
/// *explained* rather than silently hidden.
std::vector<Candidate> enumerate_candidates(const JobRequest& request);

}  // namespace hetero::broker
