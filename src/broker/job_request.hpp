#pragma once

/// \file job_request.hpp
/// What a user asks the broker for: an application, a problem size, how
/// many time-step iterations the production run needs, and the constraints
/// the recommendation must respect (deadline, budget, appetite for spot
/// interruptions). This is the input side of the automated platform
/// selection the paper's §VIII names as the open problem — "the choice of
/// the most appropriate strategy was done by hand".

#include <cstdint>
#include <optional>

#include "perf/scaling_model.hpp"

namespace hetero::broker {

struct JobRequest {
  perf::AppKind app = perf::AppKind::kReactionDiffusion;

  /// Total elements of the global cubic mesh. When > 0 the broker splits
  /// the problem over each candidate rank count (cells per rank shrink as
  /// ranks grow); when 0 the run is the paper-style weak-scaling job of
  /// `cells_per_rank_axis`^3 elements on every rank.
  std::int64_t total_elements = 0;

  /// Fix the rank count (> 0) instead of sweeping the paper's cube sizes.
  int ranks = 0;

  /// Elements per axis per rank when total_elements == 0 (the paper's 20).
  int cells_per_rank_axis = 20;

  /// Production time-step iterations the campaign must complete.
  int iterations = 100;

  // --- constraints ----------------------------------------------------------
  /// Wall-clock budget for effective time-to-solution (hours).
  std::optional<double> deadline_h;
  /// Dollar budget for the whole campaign.
  std::optional<double> budget_usd;

  /// Appetite for spot-market interruptions in [0, 1]: below 0.2 every spot
  /// strategy is rejected; [0.2, 0.5) admits only the checkpointed spot
  /// campaign; >= 0.5 also admits the uninsured spot mix.
  double risk_tolerance = 0.5;

  /// Cap on a candidate's *predicted failure cost* (Prediction.risk_usd,
  /// dollars expected to buy redone or forfeited work). A candidate over
  /// the cap is failed over: the broker re-ranks to the next feasible
  /// candidate and the rejection explains where the work went.
  std::optional<double> risk_budget_usd;

  /// Fold the one-time porting effort (§VI man-hours) into effective
  /// time-to-solution and the deadline check. Disable when every platform
  /// is already provisioned.
  bool include_provisioning = true;
};

/// Thresholds of the risk model above (documented in docs/broker.md).
inline constexpr double kSpotCampaignRisk = 0.2;
inline constexpr double kSpotMixRisk = 0.5;

}  // namespace hetero::broker
