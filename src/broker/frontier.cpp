#include "broker/frontier.hpp"

#include <algorithm>

namespace hetero::broker {

std::vector<FrontierPoint> pareto_frontier(
    const std::vector<std::pair<double, double>>& time_cost) {
  std::vector<FrontierPoint> points;
  points.reserve(time_cost.size());
  for (std::size_t i = 0; i < time_cost.size(); ++i) {
    points.push_back({i, time_cost[i].first, time_cost[i].second});
  }
  // Sort by time, breaking ties by cost then original order; then a single
  // sweep keeps every point that improves the best cost seen so far. Exact
  // (time, cost) ties are all kept: neither candidate dominates the other,
  // and the broker must be able to surface every equally-good platform.
  std::stable_sort(points.begin(), points.end(),
                   [](const FrontierPoint& a, const FrontierPoint& b) {
                     if (a.time_s != b.time_s) {
                       return a.time_s < b.time_s;
                     }
                     return a.cost_usd < b.cost_usd;
                   });
  std::vector<FrontierPoint> frontier;
  for (const auto& p : points) {
    if (frontier.empty() || p.cost_usd < frontier.back().cost_usd ||
        (p.cost_usd == frontier.back().cost_usd &&
         p.time_s == frontier.back().time_s)) {
      frontier.push_back(p);
    }
  }
  return frontier;
}

std::vector<FrontierPoint> pareto_frontier(
    const std::vector<Prediction>& predictions) {
  std::vector<std::pair<double, double>> time_cost;
  std::vector<std::size_t> original;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (!predictions[i].launched) {
      continue;
    }
    time_cost.emplace_back(predictions[i].effective_s, predictions[i].cost_usd);
    original.push_back(i);
  }
  auto frontier = pareto_frontier(time_cost);
  for (auto& point : frontier) {
    point.index = original[point.index];
  }
  return frontier;
}

}  // namespace hetero::broker
