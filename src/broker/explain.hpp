#pragma once

/// \file explain.hpp
/// Human-readable feasibility verdicts. The broker never silently drops a
/// candidate: every one that misses a constraint gets a sentence saying
/// which constraint, by how much — the "explainable rejection" half of the
/// automated selection the paper leaves as future work.

#include <string>

#include "broker/predictor.hpp"

namespace hetero::broker {

/// Why this prediction violates the request ("" = feasible). Multiple
/// violations are joined with "; ".
std::string rejection_reason(const Prediction& prediction,
                             const JobRequest& request);

/// Convenience: rejection_reason(...).empty().
bool is_feasible(const Prediction& prediction, const JobRequest& request);

}  // namespace hetero::broker
