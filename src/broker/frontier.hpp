#pragma once

/// \file frontier.hpp
/// Time/cost Pareto frontier over a candidate set — the two axes the
/// paper's figures 4–7 make the user trade off by eye ("Seeing Shapes in
/// Clouds" frames platform selection as exactly this search). A point is
/// on the frontier iff no other point is at least as good on both axes and
/// strictly better on one.

#include <cstddef>
#include <utility>
#include <vector>

#include "broker/predictor.hpp"

namespace hetero::broker {

struct FrontierPoint {
  /// Index into the vector the frontier was computed from.
  std::size_t index = 0;
  double time_s = 0.0;
  double cost_usd = 0.0;
};

/// Pareto-minimal subset of (time, cost) pairs, sorted by ascending time
/// (hence descending cost). Points with exactly equal coordinates do not
/// dominate each other, so every member of such a tie group is kept (in
/// input order).
std::vector<FrontierPoint> pareto_frontier(
    const std::vector<std::pair<double, double>>& time_cost);

/// Frontier of feasible predictions on (effective time, dollar cost);
/// indices refer to positions in `predictions`. Unlaunched predictions
/// never appear.
std::vector<FrontierPoint> pareto_frontier(
    const std::vector<Prediction>& predictions);

}  // namespace hetero::broker
