#pragma once

/// \file predictor.hpp
/// Predicts one deployment candidate end to end by *reusing* the calibrated
/// machinery the figures are generated with: `core::ExperimentRunner` in
/// modeled mode for per-iteration times, queue waits from `sched`, one-time
/// provisioning effort from `provision`, and `core::simulate_ec2_campaign`
/// for the checkpointed spot strategy. The broker therefore never disagrees
/// with the paper artifacts — a prediction *is* a modeled experiment,
/// scaled to the request's iteration count (tested as an invariant).

#include <cstdint>
#include <memory>
#include <string>

#include "broker/candidates.hpp"
#include "core/campaign_engine.hpp"
#include "core/experiment.hpp"

namespace hetero::broker {

struct Prediction {
  Candidate candidate;

  bool launched = false;
  std::string failure_reason;

  /// One-time porting effort for the platform (man-hours, §VI).
  double provisioning_hours = 0.0;
  /// Queue wait / instance boot before the job starts (seconds).
  double queue_wait_s = 0.0;
  /// Per-iteration wall time (campaign: amortized, including interruptions).
  double seconds_per_iteration = 0.0;
  /// Wall-clock of the production run (iterations x s/iter; campaign: the
  /// simulated wall clock).
  double run_s = 0.0;
  /// Total dollar bill for the campaign.
  double cost_usd = 0.0;
  /// Effective time-to-solution: queue wait + run time, plus the porting
  /// effort when the request folds it in (§VIII's accounting).
  double effective_s = 0.0;

  int hosts = 0;
  int spot_hosts = 0;
  /// Spot campaign only: reclaim events endured.
  int interruptions = 0;

  /// Predicted failure cost: dollars expected to buy *redone or lost* work.
  /// Campaign: the bill share of redone iterations. Uninsured spot mix: the
  /// whole spot share of the bill (no checkpointing — a reclaim forfeits
  /// it). On-premises and on-demand runs carry no reclaim risk.
  double risk_usd = 0.0;
};

/// Where a partially completed campaign stands when the online re-broker
/// asks for a re-price: how much work is done, and what the live pace is.
struct ResumeState {
  int iterations_total = 0;
  int iterations_done = 0;
  /// Smoothed live seconds per iteration (obs::DriftEstimator output);
  /// 0 = no observations yet, trust the model.
  double observed_seconds_per_iteration = 0.0;
  /// True when pricing the platform the job is already running on: no
  /// fresh queue wait applies, and the observed pace overrides the model.
  bool same_platform = false;
};

class Predictor {
 public:
  /// Owns a private sequential CampaignEngine seeded with `seed`.
  explicit Predictor(std::uint64_t seed = 42);

  /// Predicts through a shared engine: experiments hit the engine's
  /// memoization cache, so candidates a figure already evaluated are free,
  /// and predict() is safe to call from engine.parallel_for tasks. The
  /// engine must outlive the predictor.
  explicit Predictor(core::CampaignEngine& engine);

  /// Predicts a candidate; infeasible launches come back with
  /// launched = false and the scheduler's reason, never an exception.
  Prediction predict(const Candidate& candidate, const JobRequest& request);

  /// Re-prices only the *remaining* iterations of a partially completed
  /// campaign. On the same platform the queue wait drops (the job already
  /// runs there) and the modeled pace is scaled to the observed drift —
  /// run_s and cost_usd inflate together, because billing is linear in
  /// seconds. Used by the rebroker control loop and the svc daemon's
  /// `rebroker` advisory records.
  Prediction predict_resumed(const Candidate& candidate,
                             const JobRequest& request,
                             const ResumeState& resume);

 private:
  Prediction predict_campaign(const Candidate& candidate,
                              const JobRequest& request);

  std::unique_ptr<core::CampaignEngine> owned_engine_;
  core::CampaignEngine* engine_;
};

}  // namespace hetero::broker
