#include "broker/broker.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/units.hpp"

namespace hetero::broker {

const Prediction& Recommendation::winner() const {
  HETERO_REQUIRE(has_winner(), "recommendation has no feasible candidate");
  return ranked.front().prediction;
}

Broker::Broker(std::uint64_t seed, int jobs)
    : owned_engine_(std::make_unique<core::CampaignEngine>(
          seed, core::CampaignEngineOptions{.jobs = jobs})),
      engine_(owned_engine_.get()),
      predictor_(*engine_) {}

Broker::Broker(core::CampaignEngine& engine)
    : engine_(&engine), predictor_(engine) {}

Recommendation Broker::recommend(const JobRequest& request,
                                 const Objective& objective) {
  Recommendation out;
  out.objective_name = objective.name;

  // Predict every candidate concurrently into a slot indexed by its
  // enumeration position, then filter and rank sequentially — the output
  // is byte-identical at any jobs level.
  const auto candidates = enumerate_candidates(request);
  std::vector<Prediction> predictions(candidates.size());
  engine_->parallel_for(candidates.size(), [&](std::size_t i) {
    predictions[i] = predictor_.predict(candidates[i], request);
  });

  std::vector<Prediction> feasible;
  for (Prediction& p : predictions) {
    std::string reason = rejection_reason(p, request);
    if (reason.empty()) {
      feasible.push_back(std::move(p));
    } else {
      out.rejected.push_back({std::move(p), std::move(reason)});
    }
  }

  out.ranked.reserve(feasible.size());
  for (Prediction& p : feasible) {
    const double score = objective.score(p);
    out.ranked.push_back({std::move(p), score});
  }
  // Stable sort keeps enumeration order on ties, so results are
  // deterministic for a fixed seed.
  std::stable_sort(out.ranked.begin(), out.ranked.end(),
                   [](const RankedCandidate& a, const RankedCandidate& b) {
                     return a.score < b.score;
                   });

  std::vector<Prediction> ranked_predictions;
  ranked_predictions.reserve(out.ranked.size());
  for (const auto& rc : out.ranked) {
    ranked_predictions.push_back(rc.prediction);
  }
  out.frontier = pareto_frontier(ranked_predictions);

  // Graceful degradation: a candidate priced out by the risk budget is not
  // a dead end — name the candidate the work failed over to (the winner
  // after re-ranking) so the decision is explainable end to end.
  if (out.has_winner()) {
    const std::string target = out.winner().candidate.label();
    for (auto& rejection : out.rejected) {
      if (rejection.reason.find("exceeds risk budget") != std::string::npos) {
        rejection.reason += "; failing over to " + target;
      }
    }
  }
  return out;
}

Table recommendation_table(const Recommendation& recommendation,
                           std::size_t limit) {
  Table table({"#", "candidate", "ranks", "hosts", "s/iter", "run",
               "queue wait", "effort[h]", "effective", "cost[$]", "score"});
  const std::size_t n =
      limit == 0 ? recommendation.ranked.size()
                 : std::min(limit, recommendation.ranked.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& rc = recommendation.ranked[i];
    const auto& p = rc.prediction;
    table.add_row({std::to_string(i + 1), p.candidate.label(),
                   std::to_string(p.candidate.ranks),
                   std::to_string(p.hosts),
                   fmt_double(p.seconds_per_iteration, 3),
                   format_seconds(p.run_s), format_seconds(p.queue_wait_s),
                   fmt_double(p.provisioning_hours, 1),
                   format_seconds(p.effective_s), fmt_double(p.cost_usd, 2),
                   fmt_double(rc.score, 3)});
  }
  return table;
}

Table frontier_table(const Recommendation& recommendation) {
  Table table({"candidate", "effective", "cost[$]"});
  for (const auto& point : recommendation.frontier) {
    const auto& p = recommendation.ranked[point.index].prediction;
    table.add_row({p.candidate.label(), format_seconds(point.time_s),
                   fmt_double(point.cost_usd, 2)});
  }
  return table;
}

Table rejection_table(const Recommendation& recommendation) {
  Table table({"candidate", "rejected because"});
  for (const auto& rejection : recommendation.rejected) {
    table.add_row(
        {rejection.prediction.candidate.label(), rejection.reason});
  }
  return table;
}

}  // namespace hetero::broker
