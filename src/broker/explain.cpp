#include "broker/explain.hpp"

#include "support/table.hpp"
#include "support/units.hpp"

namespace hetero::broker {

namespace {

void append(std::string* reasons, const std::string& reason) {
  if (!reasons->empty()) {
    *reasons += "; ";
  }
  *reasons += reason;
}

}  // namespace

std::string rejection_reason(const Prediction& prediction,
                             const JobRequest& request) {
  std::string reasons;
  if (!prediction.launched) {
    append(&reasons, "cannot launch: " + prediction.failure_reason);
    return reasons;  // nothing below is meaningful without a run
  }
  const auto& c = prediction.candidate;
  if (c.strategy == Ec2Strategy::kSpotMix &&
      request.risk_tolerance < kSpotMixRisk) {
    append(&reasons,
           "uninsured spot mix needs risk tolerance >= " +
               fmt_double(kSpotMixRisk, 1) + " (request has " +
               fmt_double(request.risk_tolerance, 1) + ")");
  }
  if (c.strategy == Ec2Strategy::kSpotCampaign &&
      request.risk_tolerance < kSpotCampaignRisk) {
    append(&reasons,
           "spot campaign needs risk tolerance >= " +
               fmt_double(kSpotCampaignRisk, 1) + " (request has " +
               fmt_double(request.risk_tolerance, 1) + ")");
  }
  if (request.deadline_h &&
      prediction.effective_s > *request.deadline_h * kSecondsPerHour) {
    append(&reasons, "misses deadline: needs " +
                         format_seconds(prediction.effective_s) + " > " +
                         fmt_double(*request.deadline_h, 1) + " h");
  }
  if (request.budget_usd && prediction.cost_usd > *request.budget_usd) {
    append(&reasons, "over budget: " + fmt_usd(prediction.cost_usd) + " > " +
                         fmt_usd(*request.budget_usd));
  }
  if (request.risk_budget_usd &&
      prediction.risk_usd > *request.risk_budget_usd) {
    append(&reasons, "exceeds risk budget: predicted failure cost " +
                         fmt_usd(prediction.risk_usd) + " > " +
                         fmt_usd(*request.risk_budget_usd));
  }
  return reasons;
}

bool is_feasible(const Prediction& prediction, const JobRequest& request) {
  return rejection_reason(prediction, request).empty();
}

}  // namespace hetero::broker
