#include "broker/candidates.hpp"

#include <cmath>

#include "core/report.hpp"
#include "platform/platform_spec.hpp"
#include "support/error.hpp"

namespace hetero::broker {

std::string to_string(Ec2Strategy strategy) {
  switch (strategy) {
    case Ec2Strategy::kNone:
      return "fixed";
    case Ec2Strategy::kOnDemand:
      return "on-demand";
    case Ec2Strategy::kSpotMix:
      return "spot-mix";
    case Ec2Strategy::kSpotCampaign:
      return "spot-campaign";
  }
  return "?";
}

std::string Candidate::label() const {
  std::string s = platform;
  if (strategy == Ec2Strategy::kSpotMix) {
    s += "/spot-mix x" + std::to_string(placement_groups);
  } else if (strategy == Ec2Strategy::kSpotCampaign) {
    s += "/spot-ckpt" + std::to_string(checkpoint_interval);
  } else if (strategy == Ec2Strategy::kOnDemand) {
    s += "/on-demand";
  }
  return s + " @" + std::to_string(ranks);
}

std::vector<int> candidate_rank_counts(const JobRequest& request) {
  if (request.ranks > 0) {
    return {request.ranks};
  }
  return core::paper_process_counts();
}

int split_cells_per_rank_axis(const JobRequest& request, int ranks) {
  if (request.total_elements <= 0) {
    return request.cells_per_rank_axis;
  }
  const double global_axis =
      std::cbrt(static_cast<double>(request.total_elements));
  const double k = std::cbrt(static_cast<double>(ranks));
  const int cells = static_cast<int>(std::lround(global_axis / k));
  return cells < 1 ? 1 : cells;
}

std::vector<Candidate> enumerate_candidates(const JobRequest& request) {
  HETERO_REQUIRE(request.iterations >= 1, "job request needs iterations >= 1");
  HETERO_REQUIRE(request.total_elements > 0 || request.cells_per_rank_axis > 0,
                 "job request needs a problem size");
  std::vector<Candidate> out;
  for (int p : candidate_rank_counts(request)) {
    const int cells = split_cells_per_rank_axis(request, p);
    if (cells < 2) {
      continue;  // split finer than the discretization can represent
    }
    for (const auto* spec : platform::all_platforms()) {
      if (!spec->can_launch(p)) {
        continue;  // the paper's launch limits: never even a candidate
      }
      Candidate base;
      base.platform = spec->name;
      base.ranks = p;
      base.cells_per_rank_axis = cells;
      if (spec->name != "ec2") {
        out.push_back(base);
        continue;
      }
      // EC2 splits into acquisition strategies instead of one candidate.
      base.strategy = Ec2Strategy::kOnDemand;
      base.placement_groups = 1;
      out.push_back(base);
      for (int groups = 1; groups <= 4; ++groups) {
        Candidate mix = base;
        mix.strategy = Ec2Strategy::kSpotMix;
        mix.placement_groups = groups;
        out.push_back(mix);
      }
      Candidate campaign = base;
      campaign.strategy = Ec2Strategy::kSpotCampaign;
      campaign.spot_bid_usd = 0.70;
      out.push_back(campaign);
    }
  }
  return out;
}

}  // namespace hetero::broker
