#pragma once

/// \file broker.hpp
/// The decision engine: enumerate deployment candidates, predict each with
/// the calibrated models, filter against the request's constraints with
/// explainable rejections, rank the survivors by a pluggable objective, and
/// compute the time/cost Pareto frontier. Turns HeteroLab from a
/// measurement rig (eyeballing figures 4–7) into an advisor — the
/// automated target-platform selection §VIII names as the open problem.

#include <cstdint>
#include <memory>
#include <vector>

#include "broker/explain.hpp"
#include "broker/frontier.hpp"
#include "broker/objectives.hpp"
#include "core/campaign_engine.hpp"
#include "support/table.hpp"

namespace hetero::broker {

struct RankedCandidate {
  Prediction prediction;
  double score = 0.0;
};

struct Rejection {
  Prediction prediction;
  std::string reason;
};

struct Recommendation {
  std::string objective_name;
  /// Feasible candidates, best (lowest score) first.
  std::vector<RankedCandidate> ranked;
  /// Pareto frontier on (effective time, cost); indices into `ranked`.
  std::vector<FrontierPoint> frontier;
  /// Every infeasible candidate with its human-readable reason.
  std::vector<Rejection> rejected;

  bool has_winner() const { return !ranked.empty(); }
  /// The top-ranked prediction; requires has_winner().
  const Prediction& winner() const;
};

class Broker {
 public:
  /// `jobs` caps concurrent candidate predictions (0 = --jobs resolution:
  /// HETEROLAB_JOBS, then hardware concurrency). Predictions run through a
  /// memoizing CampaignEngine, so repeat recommendations are cache hits.
  explicit Broker(std::uint64_t seed = 42, int jobs = 0);

  /// Runs through a caller-owned engine instead of a private one — the
  /// advisory service routes every broker through its store-backed engine
  /// this way, so predictions hit the shared (and persistent) memoization.
  /// The engine must outlive the broker.
  explicit Broker(core::CampaignEngine& engine);

  /// Full pipeline for one request; deterministic in the broker seed and
  /// independent of the jobs level (candidates keep enumeration order).
  Recommendation recommend(const JobRequest& request,
                           const Objective& objective);

  /// The engine predictions run through, for stats / instrumentation.
  const core::CampaignEngine& engine() const { return *engine_; }

 private:
  std::unique_ptr<core::CampaignEngine> owned_engine_;
  core::CampaignEngine* engine_;
  Predictor predictor_;
};

/// Ranked recommendations ("which platform, how many ranks, what it
/// costs"); `limit` rows (0 = all).
Table recommendation_table(const Recommendation& recommendation,
                           std::size_t limit = 0);

/// The time/cost Pareto frontier as a table.
Table frontier_table(const Recommendation& recommendation);

/// One row per rejected candidate with its reason.
Table rejection_table(const Recommendation& recommendation);

}  // namespace hetero::broker
