#pragma once

/// \file objectives.hpp
/// Pluggable scoring of predictions. An Objective maps a Prediction to a
/// scalar (lower is better); the broker ranks feasible candidates by it.
/// Builtins cover the paper's three axes — raw speed, dollar cost, and the
/// §VIII effective time-to-solution (queue wait + porting effort + run) —
/// plus a weighted blend of time and money for anything in between.

#include <functional>
#include <string>

#include "broker/predictor.hpp"

namespace hetero::broker {

struct Objective {
  std::string name;
  std::string description;
  /// Lower is better. Only called on feasible (launched) predictions.
  std::function<double(const Prediction&)> score;
};

/// Minimize the production run's wall clock alone.
Objective min_time();

/// Minimize the total dollar bill.
Objective min_cost();

/// Minimize effective time-to-solution (wait + effort + run, §VIII).
Objective min_effective_time();

/// Minimize `time_weight` x effective hours + `cost_weight` x dollars.
Objective weighted_blend(double time_weight, double cost_weight);

/// "time" | "cost" | "effective" | "blend" (equal weights); throws on
/// anything else.
Objective objective_by_name(const std::string& name);

}  // namespace hetero::broker
