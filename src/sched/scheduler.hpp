#pragma once

/// \file scheduler.hpp
/// Batch-system simulators for the paper's "availability" axis: how long a
/// job waits before it runs, and which jobs fail to launch at all.
///
///  * PBS (puma, lagrange) — classic batch queue; waits grow with the
///    requested fraction of the machine.
///  * SGE as configured on ellipse — serial-only queue; Open MPI liaises
///    with it to place ranks, but launches above the observed daemon limit
///    fail (§VI-B, §VII-A).
///  * Shell launch on EC2 — no queue; "wait" is instance boot time, and
///    there is a per-run setup step (hosts file from assigned intranet IPs,
///    §VI-D).
///
/// All stochastic draws come from a caller-provided Rng, so experiments are
/// reproducible.

#include <memory>
#include <string>

#include "platform/platform_spec.hpp"
#include "resil/fault_plan.hpp"
#include "support/rng.hpp"

namespace hetero::sched {

struct JobRequest {
  int ranks = 1;
  /// Informational; some sites prioritize short jobs.
  double estimated_runtime_s = 0.0;
};

struct JobOutcome {
  bool launched = false;
  /// A transient failure (injected outage, flaky daemon) may succeed on
  /// resubmission; capability failures ("only 128 cores") never will.
  bool transient = false;
  /// Time from submission until the job starts (queue wait, boot, setup).
  double wait_s = 0.0;
  std::string failure_reason;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  /// Submits a job; draws waits from `rng`.
  virtual JobOutcome submit(const JobRequest& request, Rng& rng) = 0;
};

/// PBS-style batch queue (puma's Torque, lagrange's PBS Professional).
class PbsScheduler final : public Scheduler {
 public:
  explicit PbsScheduler(const platform::PlatformSpec& spec) : spec_(&spec) {}
  std::string name() const override { return "pbs"; }
  JobOutcome submit(const JobRequest& request, Rng& rng) override;

 private:
  const platform::PlatformSpec* spec_;
};

/// SGE as found on ellipse: serial-only configuration; Open MPI detects SGE
/// and spawns remote daemons itself, which breaks down above the limit.
class SgeScheduler final : public Scheduler {
 public:
  explicit SgeScheduler(const platform::PlatformSpec& spec) : spec_(&spec) {}
  std::string name() const override { return "sge"; }
  JobOutcome submit(const JobRequest& request, Rng& rng) override;

 private:
  const platform::PlatformSpec* spec_;
};

/// Direct mpiexec from a shell with a hosts file (EC2).
class ShellLauncher final : public Scheduler {
 public:
  explicit ShellLauncher(const platform::PlatformSpec& spec) : spec_(&spec) {}
  std::string name() const override { return "shell"; }
  JobOutcome submit(const JobRequest& request, Rng& rng) override;

 private:
  const platform::PlatformSpec* spec_;
};

/// Decorator injecting seed-deterministic *transient* launch failures from a
/// resil::FaultPlan. The attempt counter advances per submit() call, so a
/// retry loop sees the plan's per-attempt schedule in order.
class FaultyScheduler final : public Scheduler {
 public:
  FaultyScheduler(std::unique_ptr<Scheduler> inner, resil::FaultPlan plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}
  std::string name() const override { return inner_->name() + "+faults"; }
  JobOutcome submit(const JobRequest& request, Rng& rng) override;

 private:
  std::unique_ptr<Scheduler> inner_;
  resil::FaultPlan plan_;
  int attempt_ = 0;
};

/// Builds the right scheduler for a platform.
std::unique_ptr<Scheduler> make_scheduler(const platform::PlatformSpec& spec);

}  // namespace hetero::sched
