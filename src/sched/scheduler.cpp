#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hetero::sched {

namespace {

struct SchedMetrics {
  obs::Counter& submissions = obs::metrics().counter("sched.submissions");
  obs::Counter& launch_failures =
      obs::metrics().counter("sched.launch_failures");
  obs::Histogram& queue_wait_s =
      obs::metrics().histogram("sched.queue_wait_s");
};

SchedMetrics& sched_metrics() {
  static SchedMetrics metrics;
  return metrics;
}

/// Shared queue-event bookkeeping for every scheduler flavour. Host-side
/// events land on trace row 0 with the queue wait as their timestamp.
void record_outcome(const JobOutcome& out) {
  auto& metrics = sched_metrics();
  metrics.submissions.increment();
  if (!out.launched) {
    metrics.launch_failures.increment();
    obs::trace_instant("launch_failed", "sched", 0.0);
    return;
  }
  metrics.queue_wait_s.observe(out.wait_s);
  obs::trace_instant("job_launched", "sched", out.wait_s, "wait_s",
                     out.wait_s);
}

/// Lognormal wait with the platform's median, scaled by how much of the
/// machine the job asks for: requesting most of a busy cluster means
/// waiting for drain.
double queue_wait(const platform::PlatformSpec& spec, int ranks, Rng& rng) {
  const double fraction =
      static_cast<double>(ranks) / std::max(1, spec.max_cores());
  const double scale = 1.0 + 3.0 * fraction;
  const double mu = std::log(std::max(1.0, spec.queue_wait_median_s * scale));
  return rng.lognormal(mu, spec.queue_wait_sigma);
}

JobOutcome launch_failure(const platform::PlatformSpec& spec, int ranks) {
  JobOutcome out;
  out.launched = false;
  if (ranks > spec.max_cores()) {
    out.failure_reason = spec.name + " has only " +
                         std::to_string(spec.max_cores()) + " cores";
  } else {
    out.failure_reason = spec.limit_reason;
  }
  return out;
}

}  // namespace

JobOutcome PbsScheduler::submit(const JobRequest& request, Rng& rng) {
  HETERO_REQUIRE(request.ranks >= 1, "job needs at least one rank");
  if (!spec_->can_launch(request.ranks)) {
    const JobOutcome out = launch_failure(*spec_, request.ranks);
    record_outcome(out);
    return out;
  }
  JobOutcome out;
  out.launched = true;
  out.wait_s = queue_wait(*spec_, request.ranks, rng);
  record_outcome(out);
  return out;
}

JobOutcome SgeScheduler::submit(const JobRequest& request, Rng& rng) {
  HETERO_REQUIRE(request.ranks >= 1, "job needs at least one rank");
  if (!spec_->can_launch(request.ranks)) {
    const JobOutcome out = launch_failure(*spec_, request.ranks);
    record_outcome(out);
    return out;
  }
  JobOutcome out;
  out.launched = true;
  // Serial-only SGE: reservation happens per slot, and Open MPI must spawn
  // its own daemons afterwards — an extra start-up cost per node.
  const int nodes =
      (request.ranks + spec_->cores_per_node() - 1) / spec_->cores_per_node();
  out.wait_s = queue_wait(*spec_, request.ranks, rng) +
               0.25 * static_cast<double>(nodes);
  record_outcome(out);
  return out;
}

JobOutcome ShellLauncher::submit(const JobRequest& request, Rng& rng) {
  HETERO_REQUIRE(request.ranks >= 1, "job needs at least one rank");
  if (!spec_->can_launch(request.ranks)) {
    const JobOutcome out = launch_failure(*spec_, request.ranks);
    record_outcome(out);
    return out;
  }
  JobOutcome out;
  out.launched = true;
  // No queue: wait = instance boot (per batch, not per node — EC2 starts
  // them concurrently) + writing the hosts file from assigned intranet IPs.
  const double boot =
      rng.lognormal(std::log(spec_->queue_wait_median_s),
                    spec_->queue_wait_sigma);
  const int nodes =
      (request.ranks + spec_->cores_per_node() - 1) / spec_->cores_per_node();
  out.wait_s = boot + 2.0 * static_cast<double>(nodes) / 63.0;
  record_outcome(out);
  return out;
}

JobOutcome FaultyScheduler::submit(const JobRequest& request, Rng& rng) {
  JobOutcome out = inner_->submit(request, rng);
  const int attempt = attempt_++;
  if (out.launched && plan_.launch_fails(attempt)) {
    out.launched = false;
    out.transient = true;
    out.failure_reason = "transient launch failure (injected, attempt " +
                         std::to_string(attempt + 1) + ")";
    obs::metrics().counter("resil.launch_faults").increment();
    obs::trace_instant("launch_fault", "resil", 0.0, "attempt",
                       static_cast<double>(attempt + 1));
  }
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(
    const platform::PlatformSpec& spec) {
  switch (spec.scheduler) {
    case platform::SchedulerKind::kPbs:
      return std::make_unique<PbsScheduler>(spec);
    case platform::SchedulerKind::kSge:
      return std::make_unique<SgeScheduler>(spec);
    case platform::SchedulerKind::kShell:
      return std::make_unique<ShellLauncher>(spec);
  }
  throw Error("unknown scheduler kind");
}

}  // namespace hetero::sched
