#include "rebroker/quote.hpp"

#include "platform/platform_spec.hpp"
#include "sched/scheduler.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace hetero::rebroker {

namespace {

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) {
    h = hash_combine(h, c);
  }
  return hash_combine(h, s.size());
}

}  // namespace

PlatformQuote quote_platform(perf::AppKind app, int cells_per_rank_axis,
                             const std::string& platform, int ranks,
                             std::uint64_t seed, std::uint64_t salt) {
  PlatformQuote quote;
  quote.platform = platform;
  quote.ranks = ranks;
  const platform::PlatformSpec& spec = platform::platform_by_name(platform);
  if (ranks < 1 || !spec.can_launch(ranks)) {
    return quote;
  }

  perf::ModelConfig model =
      app == perf::AppKind::kNavierStokes ? perf::ns_model() : perf::rd_model();
  model.cells_per_rank_axis = cells_per_rank_axis;
  const perf::PhaseBreakdown step = perf::project_iteration(
      model, spec.topology(ranks), spec.cpu_model(), ranks);
  quote.seconds_per_step = step.total_s;
  quote.cost_per_step_usd = spec.cost_usd(ranks, step.total_s);

  // A fresh submission's wait, drawn from the platform's scheduler
  // simulator with a coordinate-hashed stream: the same (seed, salt,
  // platform, ranks) always prices the same wait, no matter who asks.
  std::uint64_t h = hash_combine(seed, salt);
  h = hash_string(h, platform);
  h = hash_combine(h, static_cast<std::uint64_t>(ranks));
  Rng rng(hash_mix(h));
  sched::JobRequest request;
  request.ranks = ranks;
  request.estimated_runtime_s = quote.seconds_per_step;
  const sched::JobOutcome outcome = sched::make_scheduler(spec)->submit(request, rng);
  quote.can_launch = outcome.launched;
  quote.queue_wait_s = outcome.wait_s;
  return quote;
}

int largest_cubic_ranks(const std::string& platform, int at_most) {
  const platform::PlatformSpec& spec = platform::platform_by_name(platform);
  int best = 0;
  for (int k = 1; k * k * k <= at_most; ++k) {
    const int ranks = k * k * k;
    if (spec.can_launch(ranks)) {
      best = ranks;
    }
  }
  return best;
}

}  // namespace hetero::rebroker
