#pragma once

/// \file controller.hpp
/// The closed-loop re-brokering controller. One Controller follows a direct
/// run through its attempt loop: at every completed step it folds the
/// allreduced step time into an obs::DriftEstimator, re-prices the remaining
/// work on the current platform and on the policy's fallback, and applies
/// the deadline/cost verdict with hysteresis. When the verdict flips, the
/// host checkpoints through `io` and resumes on the fallback via the
/// gid-keyed redistribution machinery; the controller records every sample,
/// decision, storm, and migration as a `heterolab-rebroker-v1` JSONL line.
///
/// Determinism contract: a Controller is a value. The runner keeps one copy
/// per simulated rank plus a canonical host copy; every rank's copy sees the
/// identical step stream (step times are allreduced maxima), so all copies
/// reach the same migrate/stay decision without communication, and rank 0's
/// copy is adopted as canonical after each attempt. All pricing inputs are
/// coordinate-hashed, so replays from the same seed are byte-identical at
/// any `--jobs` level.

#include <cstdint>
#include <string>

#include "obs/drift.hpp"
#include "rebroker/policy.hpp"
#include "rebroker/quote.hpp"

namespace hetero::rebroker {

/// Everything the verdict depends on, gathered in one place so tests can
/// replay canned drift traces against advise() directly.
struct AdviseInputs {
  int steps_total = 0;
  int steps_done = 0;
  /// Virtual seconds since the job first started running (backoffs and
  /// migration waits included, initial queue wait excluded).
  double elapsed_s = 0.0;
  double spent_usd = 0.0;
  /// Live smoothed per-step seconds; 0 = trust the model.
  double observed_step_s = 0.0;
  /// Estimated spot-reclaim probability per step on the *current* platform.
  double storm_rate = 0.0;
  int storms_seen = 0;
  /// Expected retry backoff charged per storm.
  double backoff_expect_s = 0.0;
  /// Steps redone per storm (work since the last checkpoint, on average).
  int redo_steps_per_storm = 0;
  PlatformQuote stay;
  PlatformQuote move;
  double hysteresis = 0.0;
  double deadline_s = 0.0;      ///< 0 = none
  double migrate_budget_usd = 0.0;  ///< 0 = unlimited
};

/// The verdict plus the projections it was based on (recorded in the trail).
struct Advice {
  bool migrate = false;
  double stay_finish_s = 0.0;
  double move_finish_s = 0.0;
  double stay_cost_usd = 0.0;
  double move_cost_usd = 0.0;
  std::string reason;
};

/// Pure verdict function. Projects finish time and total spend for staying
/// vs migrating, then decides:
///  * fallback that cannot launch, or whose remaining spend exceeds the
///    migration budget, is never chosen;
///  * with a deadline: the side that meets it wins; when both (or neither)
///    meet it, the cheaper side wins;
///  * "cheaper" must clear the hysteresis margin — migrate only when
///    move_cost * (1 + hysteresis) < stay_cost.
Advice advise(const AdviseInputs& inputs);

class Controller {
 public:
  Controller() = default;
  /// `backoff_expect_s` and `redo_steps_per_storm` fold the recovery
  /// policy's storm economics into the stay-side projection; the runner
  /// derives them from RecoveryPolicy (first backoff delay, half the
  /// checkpoint interval).
  Controller(const Policy& policy, perf::AppKind app, int cells_per_rank_axis,
             int steps_total, std::uint64_t seed, double backoff_expect_s,
             int redo_steps_per_storm);

  /// Host-side: (re-)prices stay and move for the attempt about to run and
  /// resets the per-attempt drift fold. `elapsed_base_s` / `spent_base_usd`
  /// carry the virtual clock and spend accumulated by earlier attempts;
  /// `storms_seen` / `steps_observed` prime the storm-rate estimate.
  void begin_attempt(int attempt, const std::string& platform, int ranks,
                     int start_step, double elapsed_base_s,
                     double spent_base_usd, int storms_seen,
                     int steps_observed);

  /// Rank-side, called after the absolute step `step` completes with the
  /// allreduced step seconds and its dollar cost. Returns true when the
  /// verdict asks for a migration (the caller checkpoints and unwinds).
  /// Identical on every rank by construction.
  bool observe_step(int step, double step_seconds, double step_cost_usd);

  /// Host-side trail entries on the canonical copy. record_storm counts
  /// storms even while the policy is disabled (the outcome still reports
  /// what the run endured); the others are no-ops when disabled.
  void record_storm(int step, double virtual_time_s);
  void record_migration(int checkpoint_step, const std::string& from_platform,
                        int from_ranks, const std::string& to_platform,
                        int to_ranks, double queue_wait_s);
  /// A failed fallback submission suppresses further migration attempts.
  void record_migration_failed(const std::string& reason);

  bool enabled() const { return policy_.enabled; }
  const Policy& policy() const { return policy_; }
  /// Virtual clock / spend including the attempt in flight.
  double elapsed_s() const { return elapsed_base_s_ + elapsed_attempt_s_; }
  double spent_usd() const { return spent_base_usd_ + spent_attempt_usd_; }
  int steps_observed() const {
    return steps_observed_base_ + steps_observed_attempt_;
  }
  /// Resolved fallback rank count for the current attempt (0 = infeasible).
  int move_ranks() const { return move_.ranks; }
  const Outcome& outcome() const { return outcome_; }
  Outcome take_outcome() { return std::move(outcome_); }

 private:
  void append_record(const std::string& line) { outcome_.trail.push_back(line); }
  AdviseInputs make_inputs(int steps_done) const;

  Policy policy_;
  perf::AppKind app_ = perf::AppKind::kReactionDiffusion;
  int cells_ = 0;
  int steps_total_ = 0;
  std::uint64_t seed_ = 0;
  double backoff_expect_s_ = 0.0;
  int redo_steps_per_storm_ = 0;

  int attempt_ = 0;
  std::string platform_;
  int ranks_ = 0;
  double elapsed_base_s_ = 0.0;
  double spent_base_usd_ = 0.0;
  double elapsed_attempt_s_ = 0.0;
  double spent_attempt_usd_ = 0.0;
  int storms_seen_ = 0;
  int steps_observed_base_ = 0;
  int steps_observed_attempt_ = 0;
  bool migration_suppressed_ = false;
  obs::DriftEstimator drift_;
  PlatformQuote stay_;
  PlatformQuote move_;
  Outcome outcome_;
};

}  // namespace hetero::rebroker
