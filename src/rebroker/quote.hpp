#pragma once

/// \file quote.hpp
/// Incremental re-pricing of the *remaining* work of a partially completed
/// direct run: one PlatformQuote per (platform, ranks) pair, built from the
/// same perf scaling model and scheduler simulators the Broker's Predictor
/// prices whole campaigns with. Quotes are pure functions of their inputs
/// (queue waits draw from a hashed Rng, not shared state), so the re-broker
/// reaches identical verdicts on every rank and at any `--jobs` level.

#include <cstdint>
#include <string>

#include "perf/scaling_model.hpp"

namespace hetero::rebroker {

/// The price of continuing (or restarting) the remaining steps somewhere.
struct PlatformQuote {
  std::string platform;
  int ranks = 0;
  /// False when the platform cannot launch `ranks` (capability limit) or
  /// the simulated submission fails outright.
  bool can_launch = false;
  /// Modeled wall seconds per application step at this size.
  double seconds_per_step = 0.0;
  /// Dollars per application step (on-demand price; linear in seconds).
  double cost_per_step_usd = 0.0;
  /// Queue wait / boot time a fresh submission would pay. Zero when the
  /// job is already running there.
  double queue_wait_s = 0.0;
};

/// Prices one application step of `app` at `cells_per_rank_axis` per rank
/// on `platform` with `ranks` processes. The queue wait is drawn from a
/// scheduler simulator seeded by hash(seed, salt, platform, ranks) — stable
/// across re-quotes with the same coordinates.
PlatformQuote quote_platform(perf::AppKind app, int cells_per_rank_axis,
                             const std::string& platform, int ranks,
                             std::uint64_t seed, std::uint64_t salt);

/// Largest cube count k^3 <= `at_most` that `platform` can launch; 0 when
/// even a single rank is impossible. Used to resolve Policy::target_ranks
/// == 0 (the gid-keyed checkpoint redistributes to any cubic count).
int largest_cubic_ranks(const std::string& platform, int at_most);

}  // namespace hetero::rebroker
