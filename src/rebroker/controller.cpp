#include "rebroker/controller.hpp"

#include <algorithm>
#include <utility>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace hetero::rebroker {

namespace {

// Distinct salts for the two quote streams ("stay" / "move" in ASCII).
constexpr std::uint64_t kStaySalt = 0x73746179ULL;
constexpr std::uint64_t kMoveSalt = 0x6d6f7665ULL;

obs::Json base_record(const char* type, const std::string& run, int attempt) {
  obs::Json j = obs::Json::object();
  j.set("schema", kTrailSchema);
  j.set("type", type);
  j.set("run", run);
  j.set("attempt", attempt);
  return j;
}

}  // namespace

Advice advise(const AdviseInputs& in) {
  Advice a;
  const int remaining = std::max(0, in.steps_total - in.steps_done);
  // Staying continues at the *observed* pace; cost on the current platform
  // is linear in seconds, so the per-step dollar rate scales with drift.
  const double step_stay =
      in.observed_step_s > 0.0 ? in.observed_step_s : in.stay.seconds_per_step;
  double stay_cost_per_step = in.stay.cost_per_step_usd;
  if (in.stay.seconds_per_step > 0.0) {
    stay_cost_per_step *= step_stay / in.stay.seconds_per_step;
  }
  // Each expected storm costs one retry backoff plus the redone steps.
  const double expected_storms = in.storm_rate * remaining;
  const double storm_time =
      expected_storms * (in.backoff_expect_s + in.redo_steps_per_storm * step_stay);
  a.stay_finish_s = in.elapsed_s + remaining * step_stay + storm_time;
  a.stay_cost_usd =
      in.spent_usd +
      (remaining + expected_storms * in.redo_steps_per_storm) * stay_cost_per_step;
  // Migrating pays the fallback's queue from here, then runs storm-free at
  // the fallback's modeled pace (on-premises queues have no spot market).
  a.move_finish_s =
      in.elapsed_s + in.move.queue_wait_s + remaining * in.move.seconds_per_step;
  a.move_cost_usd = in.spent_usd + remaining * in.move.cost_per_step_usd;

  if (!in.move.can_launch) {
    a.migrate = false;
    a.reason = "fallback cannot launch";
    return a;
  }
  if (in.migrate_budget_usd > 0.0 &&
      remaining * in.move.cost_per_step_usd > in.migrate_budget_usd) {
    a.migrate = false;
    a.reason = "migration budget exceeded";
    return a;
  }
  const double margin = 1.0 + in.hysteresis;
  if (in.deadline_s > 0.0) {
    const bool stay_ok = a.stay_finish_s <= in.deadline_s;
    const bool move_ok = a.move_finish_s <= in.deadline_s;
    if (stay_ok && !move_ok) {
      a.migrate = false;
      a.reason = "staying meets the deadline; fallback would miss it";
      return a;
    }
    if (!stay_ok && move_ok) {
      a.migrate = true;
      a.reason = "deadline at risk; fallback meets it";
      return a;
    }
    // Both meet it (or neither can): fall through to the cost rule.
  }
  if (a.move_cost_usd * margin < a.stay_cost_usd) {
    a.migrate = true;
    a.reason = "fallback cheaper past hysteresis";
  } else {
    a.migrate = false;
    a.reason = "staying within hysteresis margin";
  }
  return a;
}

Controller::Controller(const Policy& policy, perf::AppKind app,
                       int cells_per_rank_axis, int steps_total,
                       std::uint64_t seed, double backoff_expect_s,
                       int redo_steps_per_storm)
    : policy_(policy),
      app_(app),
      cells_(cells_per_rank_axis),
      steps_total_(steps_total),
      seed_(seed),
      backoff_expect_s_(backoff_expect_s),
      redo_steps_per_storm_(redo_steps_per_storm) {
  if (policy_.enabled) {
    HETERO_REQUIRE(policy_.hysteresis >= 0.0,
                   "rebroker: hysteresis must be >= 0");
    HETERO_REQUIRE(policy_.sample_every >= 1,
                   "rebroker: sample interval must be >= 1");
    HETERO_REQUIRE(policy_.max_migrations >= 0,
                   "rebroker: max migrations must be >= 0");
    // Resolves (and validates) the fallback name up front.
    (void)largest_cubic_ranks(policy_.fallback_platform, 1);
  }
}

void Controller::begin_attempt(int attempt, const std::string& platform,
                               int ranks, int start_step,
                               double elapsed_base_s, double spent_base_usd,
                               int storms_seen, int steps_observed) {
  (void)start_step;
  attempt_ = attempt;
  platform_ = platform;
  ranks_ = ranks;
  elapsed_base_s_ = elapsed_base_s;
  spent_base_usd_ = spent_base_usd;
  elapsed_attempt_s_ = 0.0;
  spent_attempt_usd_ = 0.0;
  storms_seen_ = storms_seen;
  steps_observed_base_ = steps_observed;
  steps_observed_attempt_ = 0;
  if (!policy_.enabled) {
    return;
  }
  stay_ = quote_platform(app_, cells_, platform, ranks, seed_, kStaySalt);
  stay_.can_launch = true;  // already running here
  stay_.queue_wait_s = 0.0;
  drift_ = obs::DriftEstimator(stay_.seconds_per_step);
  if (platform == policy_.fallback_platform) {
    // Already on the fallback: nowhere further to migrate.
    move_ = PlatformQuote{};
    move_.platform = policy_.fallback_platform;
    return;
  }
  int target = policy_.target_ranks > 0
                   ? policy_.target_ranks
                   : largest_cubic_ranks(policy_.fallback_platform, ranks);
  if (target < 1) {
    move_ = PlatformQuote{};
    move_.platform = policy_.fallback_platform;
    return;
  }
  move_ = quote_platform(app_, cells_, policy_.fallback_platform, target,
                         seed_, kMoveSalt);
}

AdviseInputs Controller::make_inputs(int steps_done) const {
  AdviseInputs in;
  in.steps_total = steps_total_;
  in.steps_done = steps_done;
  in.elapsed_s = elapsed_s();
  in.spent_usd = spent_usd();
  in.observed_step_s = drift_.samples() > 0 ? drift_.smoothed_s() : 0.0;
  in.storms_seen = storms_seen_;
  in.storm_rate =
      storms_seen_ > 0
          ? static_cast<double>(storms_seen_) / std::max(1, steps_observed())
          : 0.0;
  in.backoff_expect_s = backoff_expect_s_;
  in.redo_steps_per_storm = redo_steps_per_storm_;
  in.stay = stay_;
  in.move = move_;
  in.hysteresis = policy_.hysteresis;
  in.deadline_s = policy_.deadline_s;
  in.migrate_budget_usd = policy_.migrate_budget_usd;
  return in;
}

bool Controller::observe_step(int step, double step_seconds,
                              double step_cost_usd) {
  if (!policy_.enabled) {
    return false;
  }
  drift_.observe(step_seconds);
  elapsed_attempt_s_ += step_seconds;
  spent_attempt_usd_ += step_cost_usd;
  ++steps_observed_attempt_;
  const int done = step + 1;
  if (done % policy_.sample_every != 0) {
    return false;
  }
  if (done >= steps_total_) {
    return false;  // nothing left to re-broker
  }
  ++outcome_.samples;
  obs::Json sample = base_record("sample", policy_.run_label, attempt_);
  sample.set("platform", platform_);
  sample.set("ranks", ranks_);
  sample.set("step", step);
  sample.set("virtual_time_s", elapsed_s());
  sample.set("step_s", step_seconds);
  sample.set("drift", drift_.drift());
  sample.set("storm_rate", make_inputs(done).storm_rate);
  append_record(sample.dump());

  const AdviseInputs in = make_inputs(done);
  Advice a = advise(in);
  ++outcome_.decisions;
  const bool will_migrate = a.migrate && !migration_suppressed_ &&
                            outcome_.migrations < policy_.max_migrations;
  if (a.migrate && !will_migrate) {
    a.reason = migration_suppressed_ ? "fallback submission failed earlier"
                                     : "migration allowance exhausted";
  }
  obs::Json decision = base_record("decision", policy_.run_label, attempt_);
  decision.set("platform", platform_);
  decision.set("ranks", ranks_);
  decision.set("step", step);
  decision.set("virtual_time_s", elapsed_s());
  decision.set("action", will_migrate ? "migrate" : "stay");
  decision.set("stay_finish_s", a.stay_finish_s);
  decision.set("move_finish_s", a.move_finish_s);
  decision.set("stay_cost_usd", a.stay_cost_usd);
  decision.set("move_cost_usd", a.move_cost_usd);
  decision.set("reason", a.reason);
  append_record(decision.dump());
  return will_migrate;
}

void Controller::record_storm(int step, double virtual_time_s) {
  ++outcome_.storms;
  if (!policy_.enabled) {
    return;
  }
  obs::Json j = base_record("storm", policy_.run_label, attempt_);
  j.set("platform", platform_);
  j.set("ranks", ranks_);
  j.set("step", step);
  j.set("virtual_time_s", virtual_time_s);
  append_record(j.dump());
}

void Controller::record_migration(int checkpoint_step,
                                  const std::string& from_platform,
                                  int from_ranks,
                                  const std::string& to_platform, int to_ranks,
                                  double queue_wait_s) {
  if (!policy_.enabled) {
    return;
  }
  ++outcome_.migrations;
  outcome_.migration_wait_s += queue_wait_s;
  outcome_.migration_cost_usd +=
      std::max(0, steps_total_ - checkpoint_step) * move_.cost_per_step_usd;
  obs::Json j = base_record("migration", policy_.run_label, attempt_);
  j.set("from_platform", from_platform);
  j.set("to_platform", to_platform);
  j.set("from_ranks", from_ranks);
  j.set("to_ranks", to_ranks);
  j.set("checkpoint_step", checkpoint_step);
  j.set("queue_wait_s", queue_wait_s);
  j.set("virtual_time_s", elapsed_s() + queue_wait_s);
  append_record(j.dump());
}

void Controller::record_migration_failed(const std::string& reason) {
  if (!policy_.enabled) {
    return;
  }
  migration_suppressed_ = true;
  obs::Json j = base_record("decision", policy_.run_label, attempt_);
  j.set("platform", platform_);
  j.set("ranks", ranks_);
  j.set("step", -1);
  j.set("virtual_time_s", elapsed_s());
  j.set("action", "stay");
  j.set("stay_finish_s", 0.0);
  j.set("move_finish_s", 0.0);
  j.set("stay_cost_usd", 0.0);
  j.set("move_cost_usd", 0.0);
  j.set("reason", "fallback submission failed: " + reason);
  append_record(j.dump());
}

}  // namespace hetero::rebroker
