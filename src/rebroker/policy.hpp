#pragma once

/// \file policy.hpp
/// The online re-brokering policy an Experiment carries, and the outcome
/// ledger a direct run reports back. Plain data on purpose: the policy is
/// part of the experiment's identity (it goes into the campaign engine's
/// memoization key bit for bit), and the outcome rides inside
/// ExperimentResult through the svc result codec.
///
/// The control loop itself lives in controller.hpp; the full story —
/// sampling cadence, hysteresis, deadline/cost verdict, migration
/// mechanics — is docs/rebrokering.md.

#include <string>
#include <vector>

namespace hetero::rebroker {

/// Schema tag stamped on every decision-trail record.
inline constexpr const char* kTrailSchema = "heterolab-rebroker-v1";

struct Policy {
  /// Master switch; everything below is inert while false, and a disabled
  /// policy leaves the direct-run code path byte-identical to PR 6.
  bool enabled = false;

  /// Where to migrate when the verdict flips (must name a builtin
  /// platform; the controller re-prices it at every decision point).
  std::string fallback_platform = "puma";

  /// Rank count on the fallback platform; 0 = the largest cubic count the
  /// fallback can launch that does not exceed the current one (the
  /// gid-keyed checkpoint redistributes either way).
  int target_ranks = 0;

  /// Relative margin the move verdict must clear before a migration fires
  /// (and, symmetrically, before migrating back): move beats stay only
  /// when move * (1 + hysteresis) < stay. Damps flapping under
  /// oscillating drift.
  double hysteresis = 0.15;

  /// Cap on the dollars a migration may commit to (the projected
  /// remaining spend on the target platform). 0 = unlimited.
  double migrate_budget_usd = 0.0;

  /// Evaluate the re-pricing verdict every K completed steps.
  int sample_every = 1;

  /// Deadline on the campaign's virtual clock (seconds since the job
  /// started running, backoffs and migration waits included). 0 = none.
  double deadline_s = 0.0;

  /// Migrations allowed per run (migrate-back counts).
  int max_migrations = 1;

  /// Label stamped on every trail record ("run" field); benches use it to
  /// keep per-experiment trails separable in one concatenated file.
  std::string run_label;
};

/// What the re-broker did during one direct run, including the rendered
/// heterolab-rebroker-v1 decision trail (rank 0's canonical copy).
struct Outcome {
  int samples = 0;     ///< sample records written
  int decisions = 0;   ///< decision evaluations (stay and migrate alike)
  int migrations = 0;  ///< migrations executed
  int storms = 0;      ///< spot-reclaim storms endured (counted even when
                       ///< the policy is disabled and merely suffered)
  std::string final_platform;  ///< platform of the successful attempt
  double migration_wait_s = 0.0;   ///< queue waits charged by migrations
  double migration_cost_usd = 0.0; ///< remaining-spend committed at moves
  std::vector<std::string> trail;  ///< rendered JSONL, submission order
};

}  // namespace hetero::rebroker
