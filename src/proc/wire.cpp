#include "proc/wire.hpp"

#include <bit>
#include <cstring>

#include "support/error.hpp"
#include "support/io_util.hpp"

namespace hetero::proc {

namespace {

constexpr std::uint32_t kFrameMagic = 0x48504631;  // "HPF1"
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8 + 4 + 4;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bool(std::string& out, bool v) { out.push_back(v ? '\1' : '\0'); }

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out += s;
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

struct Reader {
  const std::string& bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    HETERO_REQUIRE(pos + n <= bytes.size(),
                   "experiment codec: truncated payload");
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(bytes[pos + i]);
    }
    pos += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  int i32() { return static_cast<int>(i64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    need(1);
    return bytes[pos++] != '\0';
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s = bytes.substr(pos, n);
    pos += n;
    return s;
  }
};

}  // namespace

bool send_frame(int fd, const Frame& frame) {
  std::string buf;
  buf.reserve(kFrameHeaderBytes + frame.payload.size());
  put_u32(buf, kFrameMagic);
  put_u32(buf, static_cast<std::uint32_t>(frame.type));
  put_u64(buf, frame.job_id);
  put_u32(buf, frame.attempt);
  put_u32(buf, static_cast<std::uint32_t>(frame.payload.size()));
  buf += frame.payload;
  return support::write_all(fd, buf.data(), buf.size());
}

bool recv_frame(int fd, Frame* out) {
  unsigned char header[kFrameHeaderBytes];
  if (support::read_full(fd, header, sizeof(header)) !=
      static_cast<ssize_t>(sizeof(header))) {
    return false;
  }
  if (get_u32(header) != kFrameMagic) {
    return false;
  }
  out->type = static_cast<FrameType>(get_u32(header + 4));
  out->job_id = get_u64(header + 8);
  out->attempt = get_u32(header + 16);
  const std::uint32_t len = get_u32(header + 20);
  out->payload.resize(len);
  if (len > 0 &&
      support::read_full(fd, out->payload.data(), len) !=
          static_cast<ssize_t>(len)) {
    return false;
  }
  return true;
}

std::string encode_experiment(const core::Experiment& e) {
  std::string out;
  out.reserve(512);
  out.push_back(static_cast<char>(kExperimentCodecVersion));
  put_i64(out, static_cast<std::int64_t>(e.app));
  put_string(out, e.platform);
  put_i64(out, e.ranks);
  put_i64(out, e.cells_per_rank_axis);
  put_i64(out, e.element_order);
  put_i64(out, static_cast<std::int64_t>(e.mode));
  put_i64(out, e.direct_steps);
  put_bool(out, e.ec2_spot_mix);
  put_i64(out, e.ec2_placement_groups);
  put_double(out, e.cross_group_penalty);
  put_double(out, e.ec2_spot_bid_usd);
  put_string(out, e.trace_path);
  put_string(out, e.metrics_path);
  put_double(out, e.faults.rank_crash_rate);
  put_double(out, e.faults.launch_failure_rate);
  put_double(out, e.faults.reclaim_storm_rate);
  put_double(out, e.faults.net_degrade_rate);
  put_double(out, e.faults.net_degrade_factor);
  put_double(out, e.faults.net_degrade_window_s);
  put_i64(out, static_cast<std::int64_t>(e.recovery.kind));
  put_i64(out, e.recovery.checkpoint_every);
  put_i64(out, e.recovery.max_attempts);
  put_double(out, e.recovery.backoff_base_s);
  put_double(out, e.recovery.backoff_factor);
  put_double(out, e.recovery.backoff_cap_s);
  put_bool(out, e.recovery.shrink_ranks_on_crash);
  put_bool(out, e.rebroker.enabled);
  put_string(out, e.rebroker.fallback_platform);
  put_i64(out, e.rebroker.target_ranks);
  put_double(out, e.rebroker.hysteresis);
  put_double(out, e.rebroker.migrate_budget_usd);
  put_i64(out, e.rebroker.sample_every);
  put_double(out, e.rebroker.deadline_s);
  put_i64(out, e.rebroker.max_migrations);
  put_string(out, e.rebroker.run_label);
  put_double(out, e.skew.slow_core_fraction);
  put_double(out, e.skew.slow_core_factor);
  put_double(out, e.skew.noise_rate);
  put_double(out, e.skew.noise_factor);
  put_double(out, e.skew.window_s);
  put_bool(out, e.skew_assume_balanced);
  put_bool(out, e.balance.enabled);
  put_double(out, e.balance.threshold);
  put_i64(out, e.balance.check_every);
  put_i64(out, e.balance.min_steps);
  put_i64(out, e.balance.max_rebalances);
  put_string(out, e.balance.mode);
  put_double(out, e.balance.min_weight);
  put_double(out, e.balance.max_weight);
  put_double(out, e.balance.diffusion_eta);
  put_u64(out, e.seed);
  return out;
}

core::Experiment decode_experiment(const std::string& bytes) {
  Reader in{bytes};
  in.need(1);
  const unsigned char version = static_cast<unsigned char>(bytes[in.pos++]);
  HETERO_REQUIRE(version == kExperimentCodecVersion,
                 "experiment codec: unsupported version " +
                     std::to_string(version));
  core::Experiment e;
  e.app = static_cast<perf::AppKind>(in.i64());
  e.platform = in.str();
  e.ranks = in.i32();
  e.cells_per_rank_axis = in.i32();
  e.element_order = in.i32();
  e.mode = static_cast<core::Mode>(in.i64());
  e.direct_steps = in.i32();
  e.ec2_spot_mix = in.boolean();
  e.ec2_placement_groups = in.i32();
  e.cross_group_penalty = in.f64();
  e.ec2_spot_bid_usd = in.f64();
  e.trace_path = in.str();
  e.metrics_path = in.str();
  e.faults.rank_crash_rate = in.f64();
  e.faults.launch_failure_rate = in.f64();
  e.faults.reclaim_storm_rate = in.f64();
  e.faults.net_degrade_rate = in.f64();
  e.faults.net_degrade_factor = in.f64();
  e.faults.net_degrade_window_s = in.f64();
  e.recovery.kind = static_cast<resil::RecoveryKind>(in.i64());
  e.recovery.checkpoint_every = in.i32();
  e.recovery.max_attempts = in.i32();
  e.recovery.backoff_base_s = in.f64();
  e.recovery.backoff_factor = in.f64();
  e.recovery.backoff_cap_s = in.f64();
  e.recovery.shrink_ranks_on_crash = in.boolean();
  e.rebroker.enabled = in.boolean();
  e.rebroker.fallback_platform = in.str();
  e.rebroker.target_ranks = in.i32();
  e.rebroker.hysteresis = in.f64();
  e.rebroker.migrate_budget_usd = in.f64();
  e.rebroker.sample_every = in.i32();
  e.rebroker.deadline_s = in.f64();
  e.rebroker.max_migrations = in.i32();
  e.rebroker.run_label = in.str();
  e.skew.slow_core_fraction = in.f64();
  e.skew.slow_core_factor = in.f64();
  e.skew.noise_rate = in.f64();
  e.skew.noise_factor = in.f64();
  e.skew.window_s = in.f64();
  e.skew_assume_balanced = in.boolean();
  e.balance.enabled = in.boolean();
  e.balance.threshold = in.f64();
  e.balance.check_every = in.i32();
  e.balance.min_steps = in.i32();
  e.balance.max_rebalances = in.i32();
  e.balance.mode = in.str();
  e.balance.min_weight = in.f64();
  e.balance.max_weight = in.f64();
  e.balance.diffusion_eta = in.f64();
  e.seed = in.u64();
  HETERO_REQUIRE(in.pos == bytes.size(),
                 "experiment codec: trailing bytes in payload");
  return e;
}

}  // namespace hetero::proc
