#include "proc/chaos.hpp"

#include <cstdlib>

#include "support/error.hpp"
#include "support/hash.hpp"

namespace hetero::proc {

namespace {

/// Per-kind salts keep the three decisions independent.
constexpr std::uint64_t kCrashSalt = 0x70726F63'63726173ULL;  // "proc cras"
constexpr std::uint64_t kHangSalt = 0x70726F63'68616E67ULL;   // "proc hang"
constexpr std::uint64_t kExitSalt = 0x70726F63'65786974ULL;   // "proc exit"

double chaos_unit(std::uint64_t salt, std::uint64_t seed,
                  std::uint64_t key_hash, int attempt) {
  std::uint64_t h = hash_combine(seed, salt);
  h = hash_combine(h, key_hash);
  h = hash_combine(h, static_cast<std::uint64_t>(attempt));
  return hash_unit(h);
}

}  // namespace

ChaosSpec parse_chaos_spec(const std::string& spec) {
  ChaosSpec out;
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string pair = spec.substr(start, end - start);
    start = end + 1;
    if (pair.empty()) {
      continue;
    }
    const std::size_t colon = pair.find(':');
    HETERO_REQUIRE(colon != std::string::npos,
                   "HETERO_CHAOS: expected kind:probability, got '" + pair +
                       "'");
    const std::string kind = pair.substr(0, colon);
    const std::string prob = pair.substr(colon + 1);
    char* parse_end = nullptr;
    const double p = std::strtod(prob.c_str(), &parse_end);
    HETERO_REQUIRE(parse_end != nullptr && *parse_end == '\0' &&
                       !prob.empty() && p >= 0.0 && p <= 1.0,
                   "HETERO_CHAOS: probability must be in [0, 1], got '" +
                       prob + "'");
    if (kind == "crash") {
      out.crash_p = p;
    } else if (kind == "hang") {
      out.hang_p = p;
    } else if (kind == "exit") {
      out.exit_p = p;
    } else {
      HETERO_REQUIRE(false,
                     "HETERO_CHAOS: unknown kind '" + kind +
                         "' (expected crash, hang, or exit)");
    }
  }
  return out;
}

ChaosSpec chaos_spec_from_env() {
  const char* env = std::getenv("HETERO_CHAOS");
  if (env == nullptr) {
    return {};
  }
  return parse_chaos_spec(env);
}

ChaosAction chaos_decide(const ChaosSpec& spec, std::uint64_t seed,
                         std::uint64_t key_hash, int attempt) {
  if (spec.crash_p > 0.0 &&
      chaos_unit(kCrashSalt, seed, key_hash, attempt) < spec.crash_p) {
    return ChaosAction::kCrash;
  }
  if (spec.exit_p > 0.0 &&
      chaos_unit(kExitSalt, seed, key_hash, attempt) < spec.exit_p) {
    return ChaosAction::kExit;
  }
  if (spec.hang_p > 0.0 &&
      chaos_unit(kHangSalt, seed, key_hash, attempt) < spec.hang_p) {
    return ChaosAction::kHang;
  }
  return ChaosAction::kNone;
}

}  // namespace hetero::proc
