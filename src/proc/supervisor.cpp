#include "proc/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proc/wire.hpp"
#include "support/error.hpp"
#include "support/io_util.hpp"
#include "support/record_log.hpp"
#include "support/shutdown.hpp"
#include "svc/result_codec.hpp"

namespace hetero::proc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Deterministic 64-bit hash of a cache key (drives slot pinning and the
/// chaos plan; std::hash is not stable across runs, so it cannot be used).
std::uint64_t key_hash64(const std::string& key) {
  return support::record_checksum(key, std::string());
}

// ---------------------------------------------------------------------------
// Worker side (runs in the forked child; never returns).
// ---------------------------------------------------------------------------

int g_heartbeat_fd = -1;

extern "C" void proc_heartbeat_tick(int) {
  // Async-signal-safe by construction: one write(2) of one byte on a
  // dedicated nonblocking pipe. A full pipe just drops the tick.
  const int saved_errno = errno;
  if (g_heartbeat_fd >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(g_heartbeat_fd, "h", 1);
  }
  errno = saved_errno;
}

[[noreturn]] void worker_main(std::uint64_t seed, const ProcOptions& options,
                              int job_fd, int result_fd, int heartbeat_fd,
                              const std::string& shard_path) {
  // The child inherits the supervisor's signal state; reset to a clean
  // slate (the shutdown guard blocks SIGINT/SIGTERM in the CLI parent).
  ::signal(SIGPIPE, SIG_IGN);
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
  sigset_t empty;
  sigemptyset(&empty);
  ::sigprocmask(SIG_SETMASK, &empty, nullptr);
#ifdef __linux__
  // Die with the supervisor even if its shutdown hooks never ran.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) {
    ::_exit(0);  // supervisor died between fork and prctl
  }
#endif
  g_heartbeat_fd = heartbeat_fd;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = proc_heartbeat_tick;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGALRM, &sa, nullptr);
  itimerval timer;
  const long interval_us =
      std::max(1L, static_cast<long>(options.heartbeat_interval_s * 1e6));
  timer.it_interval.tv_sec = interval_us / 1000000;
  timer.it_interval.tv_usec = interval_us % 1000000;
  timer.it_value = timer.it_interval;
  ::setitimer(ITIMER_REAL, &timer, nullptr);

  support::RecordLog shard(shard_path);
  core::ExperimentRunner runner(seed);
  for (;;) {
    Frame frame;
    if (!recv_frame(job_fd, &frame) || frame.type == FrameType::kShutdown) {
      break;  // supervisor closed the pipe or asked us to drain
    }
    if (frame.type != FrameType::kJob) {
      continue;
    }
    const core::Experiment experiment = decode_experiment(frame.payload);
    const std::string key = core::experiment_cache_key(experiment, seed);
    const ChaosAction action =
        chaos_decide(options.chaos, seed, key_hash64(key),
                     static_cast<int>(frame.attempt));
    if (action == ChaosAction::kExit) {
      ::_exit(kChaosExitStatus);
    }
    if (action == ChaosAction::kCrash) {
      ::kill(::getpid(), SIGKILL);
    }
    Frame reply;
    reply.job_id = frame.job_id;
    reply.attempt = frame.attempt;
    core::ExperimentResult result;
    try {
      result = runner.run(experiment);
    } catch (const std::exception& ex) {
      reply.type = FrameType::kFail;
      reply.payload = ex.what();
      if (!send_frame(result_fd, reply)) {
        break;
      }
      continue;
    }
    if (action == ChaosAction::kHang) {
      // Stall *mid-experiment*: the work is done but neither the shard nor
      // the supervisor hears about it. Stopping the timer silences the
      // heartbeats so the deadline reaper fires.
      itimerval off;
      std::memset(&off, 0, sizeof(off));
      ::setitimer(ITIMER_REAL, &off, nullptr);
      for (;;) {
        ::pause();
      }
    }
    // Shard first, report second: a crash between the two leaves a record
    // the supervisor harvests instead of re-running the job.
    reply.type = FrameType::kDone;
    reply.payload = svc::encode_result(result);
    shard.append(key, reply.payload);
    if (!send_frame(result_fd, reply)) {
      break;
    }
  }
  shard.flush();
  ::_exit(0);
}

std::string describe_exit(int status, bool hung, double timeout_s) {
  if (hung) {
    return "hung: no heartbeat for " + std::to_string(timeout_s) + "s";
  }
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    return "exit status " + std::to_string(WEXITSTATUS(status));
  }
  return "unknown wait status " + std::to_string(status);
}

}  // namespace

// ---------------------------------------------------------------------------
// Supervisor side.
// ---------------------------------------------------------------------------

struct Supervisor::Impl {
  std::uint64_t seed;
  ProcOptions options;
  bool own_shard_dir = false;
  int shutdown_token = -1;

  struct Slot {
    pid_t pid = -1;
    int job_fd = -1;
    int result_fd = -1;
    int heartbeat_fd = -1;
    bool alive = false;
    Clock::time_point last_heartbeat{};
    Clock::time_point respawn_at{};
    int consecutive_deaths = 0;
    std::deque<std::size_t> queue;    // pending job ids (batch-local)
    std::ptrdiff_t inflight = -1;     // batch-local job id or -1
    std::string shard_path;
    std::unique_ptr<support::RecordLog> shard;  // supervisor-side reader
  };
  std::vector<Slot> slots;
  /// Written at spawn/death, read by kill_workers() from the shutdown
  /// watcher thread without any slot lock.
  std::unique_ptr<std::atomic<pid_t>[]> live_pids;

  std::mutex exec_mutex;  // one batch in flight at a time

  /// Results harvested from shard logs: cache key -> encoded result.
  std::unordered_map<std::string, std::string> shard_index;
  /// Worker deaths caused per cache key (drives retry attempt numbers and
  /// the quarantine threshold); persists across batches.
  std::unordered_map<std::string, int> crash_counts;

  mutable std::mutex stats_mutex;
  ProcStats stats;

  obs::Counter& dispatched_count = obs::metrics().counter("proc.jobs_dispatched");
  obs::Counter& respawn_count = obs::metrics().counter("proc.respawns");
  obs::Counter& redispatch_count = obs::metrics().counter("proc.redispatches");
  obs::Counter& quarantine_count = obs::metrics().counter("proc.quarantines");
  obs::Counter& crash_count = obs::metrics().counter("proc.worker_crashes");
  obs::Counter& shard_replay_count = obs::metrics().counter("proc.shard_replays");
  obs::Histogram& heartbeat_latency =
      obs::metrics().histogram("proc.heartbeat_latency_s");

  void spawn(std::size_t index);
  void harvest(std::size_t index);
  void death(std::size_t index, bool hung, struct Batch& batch);
  double backoff_s(int consecutive_deaths) const;
};

/// Per-execute() bookkeeping.
struct Batch {
  struct Job {
    const core::Experiment* experiment = nullptr;
    std::string key;
    std::size_t slot = 0;
    core::ExecOutcome outcome;
    bool done = false;
  };
  std::vector<Job> jobs;           // unique keys, dispatch order
  std::size_t pending = 0;
};

double Supervisor::Impl::backoff_s(int consecutive_deaths) const {
  double delay = options.respawn_backoff_base_s;
  for (int i = 1; i < consecutive_deaths; ++i) {
    delay *= 2.0;
    if (delay >= options.respawn_backoff_cap_s) {
      break;
    }
  }
  return std::min(delay, options.respawn_backoff_cap_s);
}

void Supervisor::Impl::spawn(std::size_t index) {
  Slot& slot = slots[index];
  int job_pipe[2];
  int result_pipe[2];
  int heartbeat_pipe[2];
  HETERO_REQUIRE(::pipe(job_pipe) == 0 && ::pipe(result_pipe) == 0 &&
                     ::pipe(heartbeat_pipe) == 0,
                 "proc: cannot create worker pipes");
  // Heartbeats are fire-and-forget: the writer must never block in a
  // signal handler (drop on full), the reader drains without blocking.
  ::fcntl(heartbeat_pipe[1], F_SETFL, O_NONBLOCK);
  ::fcntl(heartbeat_pipe[0], F_SETFL, O_NONBLOCK);
  const pid_t pid = ::fork();
  HETERO_REQUIRE(pid >= 0, "proc: fork failed");
  if (pid == 0) {
    // Child: drop every parent-side fd, including the other workers' pipe
    // ends — a sibling holding a dead worker's write end would defeat the
    // supervisor's EOF-based death detection.
    ::close(job_pipe[1]);
    ::close(result_pipe[0]);
    ::close(heartbeat_pipe[0]);
    for (const Slot& other : slots) {
      if (other.job_fd >= 0) ::close(other.job_fd);
      if (other.result_fd >= 0) ::close(other.result_fd);
      if (other.heartbeat_fd >= 0) ::close(other.heartbeat_fd);
    }
    try {
      worker_main(seed, options, job_pipe[0], result_pipe[1],
                  heartbeat_pipe[1], slot.shard_path);
    } catch (...) {
      ::_exit(127);
    }
  }
  ::close(job_pipe[0]);
  ::close(result_pipe[1]);
  ::close(heartbeat_pipe[1]);
  slot.pid = pid;
  slot.job_fd = job_pipe[1];
  slot.result_fd = result_pipe[0];
  slot.heartbeat_fd = heartbeat_pipe[0];
  slot.alive = true;
  slot.last_heartbeat = Clock::now();
  live_pids[index].store(pid, std::memory_order_release);
  obs::trace_instant("worker_spawn", "proc", 0.0, "slot",
                     static_cast<double>(index));
}

void Supervisor::Impl::harvest(std::size_t index) {
  Slot& slot = slots[index];
  if (slot.shard == nullptr) {
    return;
  }
  slot.shard->recover([this](std::string key, std::string value) {
    shard_index.insert_or_assign(std::move(key), std::move(value));
  });
}

void Supervisor::Impl::death(std::size_t index, bool hung, Batch& batch) {
  Slot& slot = slots[index];
  live_pids[index].store(-1, std::memory_order_release);
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(slot.pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  ::close(slot.job_fd);
  ::close(slot.result_fd);
  ::close(slot.heartbeat_fd);
  slot.job_fd = slot.result_fd = slot.heartbeat_fd = -1;
  slot.alive = false;
  slot.pid = -1;
  {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++stats.worker_crashes;
    if (hung) {
      ++stats.hung_workers;
    }
  }
  crash_count.increment();
  const std::string reason =
      describe_exit(status, hung, options.heartbeat_timeout_s);
  obs::trace_instant("worker_death", "proc", 0.0, "slot",
                     static_cast<double>(index));
  // The worker may have finished (and sharded) jobs it never got to
  // report; pick those up before deciding the in-flight job's fate.
  harvest(index);
  if (slot.inflight >= 0) {
    Batch::Job& job = batch.jobs[static_cast<std::size_t>(slot.inflight)];
    const auto it = shard_index.find(job.key);
    if (it != shard_index.end()) {
      bool decoded = false;
      try {
        job.outcome.result = svc::decode_result(it->second);
        decoded = true;
      } catch (const std::exception&) {
        // Unreadable shard record (e.g. older codec); recompute instead.
      }
      if (decoded) {
        job.done = true;
        --batch.pending;
        slot.inflight = -1;
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.shard_replays;
        shard_replay_count.increment();
      }
    }
  }
  if (slot.inflight >= 0) {
    Batch::Job& job = batch.jobs[static_cast<std::size_t>(slot.inflight)];
    const int crashes = ++crash_counts[job.key];
    if (crashes >= options.max_crashes_per_job) {
      job.outcome.result = core::ExperimentResult{};
      job.outcome.result.launched = false;
      job.outcome.result.failure_reason =
          "quarantined: experiment killed its worker " +
          std::to_string(crashes) + " times (last: " + reason + ")";
      job.done = true;
      --batch.pending;
      {
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.quarantined;
      }
      quarantine_count.increment();
      obs::trace_instant("job_quarantine", "proc", 0.0, "crashes",
                         static_cast<double>(crashes));
    } else {
      slot.queue.push_front(static_cast<std::size_t>(slot.inflight));
      {
        std::lock_guard<std::mutex> lock(stats_mutex);
        ++stats.redispatches;
      }
      redispatch_count.increment();
      obs::trace_instant("job_redispatch", "proc", 0.0, "attempt",
                         static_cast<double>(crashes));
    }
    slot.inflight = -1;
  }
  ++slot.consecutive_deaths;
  slot.respawn_at =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             backoff_s(slot.consecutive_deaths)));
}

int resolve_workers(int requested) {
  if (requested >= 0) {
    return requested;
  }
  if (const char* env = std::getenv("HETEROLAB_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && end != env && *end == '\0' && v > 0) {
      return static_cast<int>(v);
    }
  }
  return 0;
}

std::unique_ptr<Supervisor> make_supervisor(int requested_workers,
                                            std::uint64_t runner_seed,
                                            ProcOptions options) {
  const int workers = resolve_workers(requested_workers);
  if (workers <= 0) {
    return nullptr;
  }
  options.workers = workers;
  return std::make_unique<Supervisor>(runner_seed, std::move(options));
}

Supervisor::Supervisor(std::uint64_t runner_seed, ProcOptions options)
    : impl_(std::make_unique<Impl>()) {
  HETERO_REQUIRE(options.workers >= 1,
                 "proc: workers must be >= 1 (use the in-process pool for 0)");
  HETERO_REQUIRE(options.heartbeat_interval_s > 0.0 &&
                     options.heartbeat_timeout_s >
                         options.heartbeat_interval_s,
                 "proc: heartbeat timeout must exceed the interval");
  HETERO_REQUIRE(options.max_crashes_per_job >= 1,
                 "proc: max_crashes_per_job must be >= 1");
  if (!options.chaos.any()) {
    options.chaos = chaos_spec_from_env();
  }
  impl_->seed = runner_seed;
  impl_->options = options;
  // Workers that die mid-frame would otherwise kill the supervisor with
  // SIGPIPE on the next dispatch; the write error is handled instead.
  ::signal(SIGPIPE, SIG_IGN);
  if (impl_->options.shard_dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string templ = (tmp != nullptr && *tmp != '\0' ? std::string(tmp)
                                                        : std::string("/tmp")) +
                        "/hetero-proc-XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    HETERO_REQUIRE(::mkdtemp(buf.data()) != nullptr,
                   "proc: cannot create shard directory");
    impl_->options.shard_dir = buf.data();
    impl_->own_shard_dir = true;
  } else {
    ::mkdir(impl_->options.shard_dir.c_str(), 0755);  // EEXIST is fine
  }
  impl_->slots.resize(static_cast<std::size_t>(impl_->options.workers));
  impl_->live_pids = std::make_unique<std::atomic<pid_t>[]>(
      static_cast<std::size_t>(impl_->options.workers));
  for (std::size_t s = 0; s < impl_->slots.size(); ++s) {
    impl_->live_pids[s].store(-1, std::memory_order_relaxed);
    Impl::Slot& slot = impl_->slots[s];
    slot.shard_path = impl_->options.shard_dir + "/shard-" +
                      std::to_string(s) + ".log";
    slot.shard = std::make_unique<support::RecordLog>(slot.shard_path);
    impl_->harvest(s);
  }
  for (std::size_t s = 0; s < impl_->slots.size(); ++s) {
    impl_->spawn(s);
  }
  impl_->shutdown_token =
      support::add_shutdown_hook([this] { kill_workers(); });
}

Supervisor::~Supervisor() {
  support::remove_shutdown_hook(impl_->shutdown_token);
  for (std::size_t s = 0; s < impl_->slots.size(); ++s) {
    Impl::Slot& slot = impl_->slots[s];
    const pid_t pid = impl_->live_pids[s].exchange(-1);
    if (pid > 0) {
      // Abrupt is safe: completed work lives in the shard logs, and the
      // recovery path truncates any torn tail on the next open.
      ::kill(pid, SIGKILL);
      int status = 0;
      pid_t reaped;
      do {
        reaped = ::waitpid(pid, &status, 0);
      } while (reaped < 0 && errno == EINTR);
    }
    if (slot.job_fd >= 0) ::close(slot.job_fd);
    if (slot.result_fd >= 0) ::close(slot.result_fd);
    if (slot.heartbeat_fd >= 0) ::close(slot.heartbeat_fd);
    slot.shard.reset();
    if (impl_->own_shard_dir) {
      ::unlink(slot.shard_path.c_str());
    }
  }
  if (impl_->own_shard_dir) {
    ::rmdir(impl_->options.shard_dir.c_str());
  }
}

void Supervisor::kill_workers() {
  for (std::size_t s = 0; s < impl_->slots.size(); ++s) {
    const pid_t pid = impl_->live_pids[s].exchange(-1);
    if (pid > 0) {
      ::kill(pid, SIGKILL);
    }
  }
}

int Supervisor::workers() const { return impl_->options.workers; }

const std::string& Supervisor::shard_dir() const {
  return impl_->options.shard_dir;
}

ProcStats Supervisor::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->stats;
}

std::vector<core::ExecOutcome> Supervisor::execute(
    const std::vector<core::Experiment>& batch_in) {
  std::lock_guard<std::mutex> exec_lock(impl_->exec_mutex);
  Impl& im = *impl_;
  // Pick up shard records from previous batches/runs (a persistent
  // --proc-dir makes an interrupted campaign incremental here).
  for (std::size_t s = 0; s < im.slots.size(); ++s) {
    im.harvest(s);
  }
  Batch batch;
  // Identical descriptors are computed once; item_job maps every input
  // index to its (unique-keyed) job.
  std::vector<std::size_t> item_job(batch_in.size());
  std::unordered_map<std::string, std::size_t> job_by_key;
  for (std::size_t i = 0; i < batch_in.size(); ++i) {
    const std::string key = core::experiment_cache_key(batch_in[i], im.seed);
    const auto it = job_by_key.find(key);
    if (it != job_by_key.end()) {
      item_job[i] = it->second;
      continue;
    }
    Batch::Job job;
    job.experiment = &batch_in[i];
    job.key = key;
    job.slot = static_cast<std::size_t>(
        key_hash64(key) % static_cast<std::uint64_t>(im.slots.size()));
    const std::size_t id = batch.jobs.size();
    job_by_key.emplace(key, id);
    item_job[i] = id;
    const auto stored = im.shard_index.find(key);
    if (stored != im.shard_index.end()) {
      try {
        job.outcome.result = svc::decode_result(stored->second);
        job.done = true;
        std::lock_guard<std::mutex> lock(im.stats_mutex);
        ++im.stats.shard_replays;
        im.shard_replay_count.increment();
      } catch (const std::exception&) {
        job.done = false;  // unreadable record: recompute
      }
    }
    batch.jobs.push_back(std::move(job));
  }
  for (std::size_t j = 0; j < batch.jobs.size(); ++j) {
    if (!batch.jobs[j].done) {
      ++batch.pending;
      im.slots[batch.jobs[j].slot].queue.push_back(j);
    }
  }

  const auto heartbeat_timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(im.options.heartbeat_timeout_s));
  while (batch.pending > 0) {
    const Clock::time_point now = Clock::now();
    // Respawn dead slots whose backoff elapsed and that have work.
    for (std::size_t s = 0; s < im.slots.size(); ++s) {
      Impl::Slot& slot = im.slots[s];
      if (!slot.alive && !slot.queue.empty() && now >= slot.respawn_at) {
        im.spawn(s);
        {
          std::lock_guard<std::mutex> lock(im.stats_mutex);
          ++im.stats.respawns;
        }
        im.respawn_count.increment();
      }
    }
    // Dispatch one job per idle live worker (send failures surface as
    // pipe EOF in the poll below and re-dispatch from there).
    for (std::size_t s = 0; s < im.slots.size(); ++s) {
      Impl::Slot& slot = im.slots[s];
      if (!slot.alive || slot.inflight >= 0 || slot.queue.empty()) {
        continue;
      }
      const std::size_t j = slot.queue.front();
      slot.queue.pop_front();
      Batch::Job& job = batch.jobs[j];
      Frame frame;
      frame.type = FrameType::kJob;
      frame.job_id = j;
      frame.attempt = static_cast<std::uint32_t>(im.crash_counts[job.key]);
      frame.payload = encode_experiment(*job.experiment);
      slot.inflight = static_cast<std::ptrdiff_t>(j);
      slot.last_heartbeat = Clock::now();
      send_frame(slot.job_fd, frame);
      {
        std::lock_guard<std::mutex> lock(im.stats_mutex);
        ++im.stats.jobs_dispatched;
      }
      im.dispatched_count.increment();
    }
    // Wait for results, heartbeats, deaths — bounded by the nearest
    // deadline (hung-worker check or pending respawn).
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_slot;
    Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(200);
    for (std::size_t s = 0; s < im.slots.size(); ++s) {
      Impl::Slot& slot = im.slots[s];
      if (slot.alive) {
        fds.push_back({slot.result_fd, POLLIN, 0});
        fd_slot.push_back(s);
        fds.push_back({slot.heartbeat_fd, POLLIN, 0});
        fd_slot.push_back(s);
        if (slot.inflight >= 0) {
          deadline = std::min(deadline, slot.last_heartbeat + heartbeat_timeout);
        }
      } else if (!slot.queue.empty()) {
        deadline = std::min(deadline, slot.respawn_at);
      }
    }
    const double wait_s =
        std::max(0.001, seconds_between(Clock::now(), deadline));
    const int timeout_ms = static_cast<int>(wait_s * 1000.0) + 1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      HETERO_REQUIRE(false, "proc: poll failed in supervisor loop");
    }
    const Clock::time_point after = Clock::now();
    for (std::size_t f = 0; f < fds.size() && ready > 0; ++f) {
      if (fds[f].revents == 0) {
        continue;
      }
      const std::size_t s = fd_slot[f];
      Impl::Slot& slot = im.slots[s];
      if (!slot.alive) {
        continue;  // already handled via an earlier fd this round
      }
      if (fds[f].fd == slot.heartbeat_fd) {
        char buf[256];
        ssize_t n;
        bool got = false;
        while ((n = ::read(slot.heartbeat_fd, buf, sizeof(buf))) > 0) {
          got = true;
        }
        if (got) {
          im.heartbeat_latency.observe(
              seconds_between(slot.last_heartbeat, after));
          slot.last_heartbeat = after;
        }
        continue;
      }
      if (fds[f].fd != slot.result_fd) {
        continue;  // fd belongs to a slot respawned this round
      }
      if ((fds[f].revents & POLLIN) != 0) {
        Frame frame;
        if (recv_frame(slot.result_fd, &frame)) {
          if (slot.inflight >= 0 &&
              frame.job_id == static_cast<std::uint64_t>(slot.inflight) &&
              (frame.type == FrameType::kDone ||
               frame.type == FrameType::kFail)) {
            Batch::Job& job = batch.jobs[frame.job_id];
            if (frame.type == FrameType::kDone) {
              job.outcome.result = svc::decode_result(frame.payload);
            } else {
              job.outcome.failed = true;
              job.outcome.error = frame.payload;
            }
            job.done = true;
            --batch.pending;
            slot.inflight = -1;
            slot.consecutive_deaths = 0;
            slot.last_heartbeat = after;
            std::lock_guard<std::mutex> lock(im.stats_mutex);
            ++im.stats.results_completed;
          }
          continue;
        }
        im.death(s, /*hung=*/false, batch);
        continue;
      }
      if ((fds[f].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
        im.death(s, /*hung=*/false, batch);
      }
    }
    // Heartbeat deadlines: a live worker with an in-flight job and no
    // heartbeat past the timeout is hung — SIGKILL and treat as a death.
    for (std::size_t s = 0; s < im.slots.size(); ++s) {
      Impl::Slot& slot = im.slots[s];
      if (slot.alive && slot.inflight >= 0 &&
          after - slot.last_heartbeat > heartbeat_timeout) {
        ::kill(slot.pid, SIGKILL);
        im.death(s, /*hung=*/true, batch);
      }
    }
  }

  std::vector<core::ExecOutcome> outcomes(batch_in.size());
  for (std::size_t i = 0; i < batch_in.size(); ++i) {
    outcomes[i] = batch.jobs[item_job[i]].outcome;
  }
  return outcomes;
}

}  // namespace hetero::proc
