#pragma once

/// \file chaos.hpp
/// Seed-deterministic chaos injection for the multi-process campaign
/// backend. Where `hetero::resil` injects *simulated* faults into the
/// virtual-clock world, chaos injection kills real OS processes: a worker
/// picked by the plan `_exit`s, SIGKILLs itself, or stalls silently until
/// the supervisor's heartbeat deadline reaps it. That exercises the whole
/// supervision loop — waitpid status decoding, re-dispatch, backoff,
/// quarantine — under ASan in CI.
///
/// Like `resil::FaultPlan`, every decision is a pure splitmix64 hash of
/// (seed, kind salt, job key hash, attempt): no RNG state, no ordering
/// sensitivity, and the *attempt* in the tuple means a job that killed its
/// worker once usually survives the retry — only genuinely unlucky jobs
/// reach the quarantine threshold.
///
/// Spec string (the `HETERO_CHAOS` environment variable):
///
///   crash:0.05,hang:0.05,exit:0.05
///
/// Any subset of the three `kind:probability` pairs, comma-separated.

#include <cstdint>
#include <string>

namespace hetero::proc {

struct ChaosSpec {
  /// P(worker SIGKILLs itself at job start) per (job, attempt).
  double crash_p = 0.0;
  /// P(worker stalls mid-experiment — after compute, before reporting).
  double hang_p = 0.0;
  /// P(worker _exit(3)s at job start).
  double exit_p = 0.0;

  bool any() const { return crash_p > 0.0 || hang_p > 0.0 || exit_p > 0.0; }
};

/// Parses a `HETERO_CHAOS` spec string. Throws hetero::Error on malformed
/// input (unknown kind, probability outside [0, 1]). An empty string is an
/// all-zero spec.
ChaosSpec parse_chaos_spec(const std::string& spec);

/// The spec from the HETERO_CHAOS environment variable, or all-zero when
/// unset.
ChaosSpec chaos_spec_from_env();

enum class ChaosAction { kNone, kCrash, kHang, kExit };

/// The planned action for one (job, attempt) cell. Deterministic in
/// (spec, seed, key_hash, attempt); kinds are checked crash, exit, hang in
/// that order with independent salts.
ChaosAction chaos_decide(const ChaosSpec& spec, std::uint64_t seed,
                         std::uint64_t key_hash, int attempt);

/// Exit status a chaos `exit` action uses — distinctive in waitpid status
/// so the quarantine reason names the cause.
inline constexpr int kChaosExitStatus = 3;

}  // namespace hetero::proc
