#pragma once

/// \file wire.hpp
/// Supervisor <-> worker wire protocol of the multi-process campaign
/// backend: length-prefixed binary frames over pipes, plus a bit-exact
/// Experiment codec (the job payload) in the style of svc::result_codec —
/// doubles travel as IEEE-754 bit patterns so a worker computes exactly
/// the experiment the supervisor described.
///
/// Frame layout (little-endian):
///
///   [magic u32 "HPF1"][type u32][job_id u64][attempt u32][len u32][payload]
///
/// Frames are written with a single EINTR-safe write_all (worker heartbeats
/// ride a separate pipe precisely so a SIGALRM never interleaves bytes into
/// a result frame). A short read mid-frame means the peer died; recv_frame
/// reports that as false rather than throwing, because worker death is a
/// routine event the supervisor handles.

#include <cstdint>
#include <string>

#include "core/experiment.hpp"

namespace hetero::proc {

enum class FrameType : std::uint32_t {
  kJob = 1,       ///< supervisor -> worker: payload = encoded Experiment
  kDone = 2,      ///< worker -> supervisor: payload = encoded ExperimentResult
  kFail = 3,      ///< worker -> supervisor: payload = error message (the
                  ///< experiment threw; an app error, not a worker crash)
  kShutdown = 4,  ///< supervisor -> worker: drain and exit(0)
};

struct Frame {
  FrameType type = FrameType::kJob;
  std::uint64_t job_id = 0;
  std::uint32_t attempt = 0;
  std::string payload;
};

/// True on success; false on a write error (e.g. EPIPE after the peer
/// died — the caller's poll loop will see the death separately).
bool send_frame(int fd, const Frame& frame);

/// True and fills `out` when a whole frame arrived; false on EOF, a torn
/// frame (peer died mid-write), or a corrupt header.
bool recv_frame(int fd, Frame* out);

/// Version tag of the experiment encoding; bumped on layout changes so a
/// mixed-build supervisor/worker pair fails loudly instead of misreading.
inline constexpr unsigned char kExperimentCodecVersion = 2;

std::string encode_experiment(const core::Experiment& experiment);

/// Throws hetero::Error on a malformed or version-mismatched payload.
core::Experiment decode_experiment(const std::string& bytes);

}  // namespace hetero::proc
