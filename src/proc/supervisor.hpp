#pragma once

/// \file supervisor.hpp
/// Supervised multi-process execution backend for the CampaignEngine.
///
/// The supervisor forks N worker processes up front (while the parent is
/// still single-threaded) and implements `core::BatchExecutor`: each batch
/// of cache-miss experiments is distributed over the workers by descriptor
/// hash (a job is pinned to its slot, so retries and restarts land on the
/// same shard), shipped as binary frames over per-worker pipes, and
/// collected in submission order.
///
/// Failure is treated as the common case:
///
///   * every worker sends a heartbeat byte on a dedicated pipe from a
///     SIGALRM tick; a worker silent past the deadline is SIGKILLed;
///   * worker death (crash, chaos exit, hang-kill) is detected by pipe EOF
///     and decoded via waitpid; the dead worker's in-flight job is
///     re-dispatched and the slot respawns with capped exponential backoff;
///   * a job that kills its worker `max_crashes_per_job` times is
///     *quarantined*: recorded as a failed ExperimentResult naming the
///     crash, so a poison job cannot wedge the campaign;
///   * workers append every completed result to a per-slot crash-safe
///     shard log (`support::RecordLog`, checksummed, torn tails truncated
///     on recovery); the supervisor harvests shards on death and at batch
///     start, so work finished by a worker that died before reporting —
///     or by a previous interrupted run sharing the same shard directory —
///     is never recomputed.
///
/// Determinism: workers run the same `ExperimentRunner(seed)` as the
/// in-process pool and results are returned in submission order, so every
/// table/CSV/JSONL stays byte-identical to `--workers 0` at any worker
/// count (quarantined rows excepted, by construction). Chaos injection
/// (`HETERO_CHAOS`) is itself seed-deterministic — see chaos.hpp.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign_engine.hpp"
#include "proc/chaos.hpp"

namespace hetero::proc {

struct ProcOptions {
  /// Worker processes to fork. Must be >= 1 (callers degrade to the
  /// in-process pool instead of constructing a Supervisor with 0).
  int workers = 1;
  /// Worker heartbeat tick (SIGALRM period).
  double heartbeat_interval_s = 0.1;
  /// A worker with an in-flight job and no heartbeat for this long is
  /// declared hung and SIGKILLed.
  double heartbeat_timeout_s = 5.0;
  /// Crashes (of any kind) one job may cause before it is quarantined.
  int max_crashes_per_job = 3;
  /// Respawn backoff: min(cap, base * 2^(consecutive deaths - 1)).
  double respawn_backoff_base_s = 0.05;
  double respawn_backoff_cap_s = 1.0;
  /// Directory for the per-worker result shards. Empty = a private
  /// mkdtemp directory removed on destruction; a persistent path makes an
  /// interrupted campaign restart incremental even without --store.
  std::string shard_dir;
  /// Chaos injection spec. When zero (the default), the HETERO_CHAOS
  /// environment variable is consulted instead.
  ChaosSpec chaos;
};

struct ProcStats {
  std::uint64_t jobs_dispatched = 0;
  std::uint64_t results_completed = 0;
  /// Results answered from a shard log instead of a live worker (worker
  /// died after computing, or a previous run left them behind).
  std::uint64_t shard_replays = 0;
  /// Worker deaths observed (crashes, chaos exits, hang kills).
  std::uint64_t worker_crashes = 0;
  /// Of which: heartbeat-deadline SIGKILLs.
  std::uint64_t hung_workers = 0;
  /// Workers forked after a death (initial spawns not counted).
  std::uint64_t respawns = 0;
  /// In-flight jobs re-sent after their worker died.
  std::uint64_t redispatches = 0;
  /// Jobs recorded as failed results after max_crashes_per_job deaths.
  std::uint64_t quarantined = 0;
};

class Supervisor final : public core::BatchExecutor {
 public:
  /// Forks the workers immediately — construct while the process is still
  /// single-threaded (before any engine pool exists). Throws on fork/pipe
  /// failure or an invalid options combination.
  Supervisor(std::uint64_t runner_seed, ProcOptions options = {});
  /// Shuts the workers down (SIGKILL + waitpid — shards make abrupt death
  /// safe) and removes a private shard directory.
  ~Supervisor() override;

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// core::BatchExecutor: runs the batch on the worker pool. Thread-safe
  /// (concurrent batches serialize). Outcomes are in submission order.
  std::vector<core::ExecOutcome> execute(
      const std::vector<core::Experiment>& batch) override;

  /// SIGKILLs every live worker without reaping. Async-usable from the
  /// shutdown watcher thread; the destructor still reaps.
  void kill_workers();

  int workers() const;
  const std::string& shard_dir() const;
  ProcStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// `--workers` resolution shared by every CLI consumer: an explicit
/// request >= 0 wins (0 = disabled), a negative request consults a
/// positive integer HETEROLAB_WORKERS, else 0 (in-process pool).
int resolve_workers(int requested);

/// Convenience used by the CLI and benches: a Supervisor when the resolved
/// worker count is positive, nullptr (in-process pool) otherwise.
std::unique_ptr<Supervisor> make_supervisor(int requested_workers,
                                            std::uint64_t runner_seed,
                                            ProcOptions options = {});

}  // namespace hetero::proc
