#pragma once

/// \file system_builder.hpp
/// Distributed linear-system assembly with global ids (the Trilinos
/// FECrsMatrix/globalAssemble analogue).
///
/// Ranks add matrix and right-hand-side contributions by *global* id,
/// including rows they do not own (FEM elements on partition boundaries
/// produce those). `finalize()` ships off-process contributions to the row
/// owners, resolves ghost columns, and builds the distributed CSR matrix.
///
/// Time-dependent problems reassemble every step with an identical sparsity
/// pattern, so the first finalize() freezes the structure (index maps, halo
/// plan, CSR pattern, communication routing) and later assemble→finalize
/// rounds replay it shipping *values only* — the same optimization real FEM
/// codes use.

#include <memory>
#include <optional>
#include <vector>

#include "la/dist_matrix.hpp"
#include "la/dist_vector.hpp"
#include "la/halo.hpp"
#include "la/index_map.hpp"

namespace hetero::la {

class DistSystemBuilder {
 public:
  /// Collective: establishes ownership of the dof gids this rank touches.
  DistSystemBuilder(simmpi::Comm& comm, std::vector<GlobalId> touched);

  /// Starts an assembly round; clears pending contributions.
  void begin_assembly();

  /// Adds A(row, col) += value. After the structure is frozen, calls must
  /// repeat the first round's (row, col) sequence exactly.
  void add_matrix(GlobalId row, GlobalId col, double value);

  /// Adds b(row) += value. Rows may repeat freely within a round, but the
  /// sequence must repeat across rounds once frozen.
  void add_rhs(GlobalId row, double value);

  /// Collective: ships contributions, builds (first time) or refills the
  /// distributed system.
  void finalize(simmpi::Comm& comm);

  bool structure_frozen() const { return frozen_; }

  const IndexMap& map() const;
  const HaloExchange& halo() const;
  DistCsrMatrix& matrix();
  const DistCsrMatrix& matrix() const;
  DistVector& rhs();

 private:
  struct GlobalTriplet {
    GlobalId row = 0;
    GlobalId col = 0;
    double value = 0.0;
  };
  struct GlobalPair {
    GlobalId row = 0;
    double value = 0.0;
  };

  void first_finalize(simmpi::Comm& comm);
  void replay_finalize(simmpi::Comm& comm);
  int owner_of_row(GlobalId row) const;

  std::vector<GlobalId> touched_;
  std::unordered_map<GlobalId, int> touched_owner_;
  std::optional<GidDirectory> directory_;

  // Pending contributions of the current round.
  std::vector<GlobalTriplet> mat_pending_;
  std::vector<GlobalPair> rhs_pending_;

  // Frozen structure.
  bool frozen_ = false;
  std::optional<IndexMap> map_;
  std::unique_ptr<HaloExchange> halo_;
  std::optional<DistCsrMatrix> matrix_;
  std::optional<DistVector> rhs_;

  // Replay plans (first-round routing, reused verbatim).
  // For matrix triplets: indices into mat_pending_ destined to each rank.
  std::vector<std::vector<std::size_t>> mat_route_;
  std::vector<std::size_t> mat_kept_;          // indices staying local
  std::vector<std::int64_t> mat_slots_;        // CSR slot per combined triplet
  std::vector<GlobalTriplet> mat_sequence_;    // first-round sequence (checks)
  std::vector<std::vector<std::size_t>> rhs_route_;
  std::vector<std::size_t> rhs_kept_;
  std::vector<int> rhs_slots_;                 // owned lid per combined pair
  std::vector<GlobalPair> rhs_sequence_;
};

}  // namespace hetero::la
