#pragma once

/// \file system_builder.hpp
/// Distributed linear-system assembly with global ids (the Trilinos
/// FECrsMatrix/globalAssemble analogue).
///
/// Ranks add matrix and right-hand-side contributions by *global* id,
/// including rows they do not own (FEM elements on partition boundaries
/// produce those). `finalize()` ships off-process contributions to the row
/// owners, resolves ghost columns, and builds the distributed CSR matrix.
///
/// Time-dependent problems reassemble every step with an identical sparsity
/// pattern, so the first finalize() freezes the structure (index maps, halo
/// plan, CSR pattern, communication routing) and later assemble→finalize
/// rounds replay it shipping *values only* — the same optimization real FEM
/// codes use.
///
/// Under la::KernelMode::kFast frozen rounds go further: begin_assembly()
/// zeroes the CSR values and rhs up front and every add_* call scatters its
/// value straight to its precomputed destination (CSR slot for locally kept
/// entries, routing buffer otherwise) while checking the frozen sequence,
/// so a refill performs no triplet buffering and no second pass. The
/// accumulation order per slot is unchanged from the reference replay
/// (kept contributions in add order first, then per-source-rank blocks), so
/// refilled values are bit-identical. Sequence violations throw at the
/// offending add_* call instead of at finalize().

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "la/dist_matrix.hpp"
#include "la/dist_vector.hpp"
#include "la/halo.hpp"
#include "la/index_map.hpp"

namespace hetero::la {

class DistSystemBuilder {
 public:
  /// Collective: establishes ownership of the dof gids this rank touches.
  DistSystemBuilder(simmpi::Comm& comm, std::vector<GlobalId> touched);

  /// Starts an assembly round; clears pending contributions.
  void begin_assembly();

  /// Adds A(row, col) += value. After the structure is frozen, calls must
  /// repeat the first round's (row, col) sequence exactly.
  void add_matrix(GlobalId row, GlobalId col, double value);

  /// Adds b(row) += value. Rows may repeat freely within a round, but the
  /// sequence must repeat across rounds once frozen.
  void add_rhs(GlobalId row, double value);

  /// Adds a dense element block: A(rows[i], cols[j]) += block[i*cols.size()
  /// + j] in row-major order — the exact add_matrix sequence a nested i/j
  /// loop would produce, so element kernels can hand their matrices over
  /// whole.
  void add_dense_block(std::span<const GlobalId> rows,
                       std::span<const GlobalId> cols,
                       std::span<const double> block);

  /// Adds b(rows[i]) += values[i] for each i, in order.
  void add_rhs_block(std::span<const GlobalId> rows,
                     std::span<const double> values);

  /// Collective: ships contributions, builds (first time) or refills the
  /// distributed system.
  void finalize(simmpi::Comm& comm);

  bool structure_frozen() const { return frozen_; }

  const IndexMap& map() const;
  const HaloExchange& halo() const;
  DistCsrMatrix& matrix();
  const DistCsrMatrix& matrix() const;
  DistVector& rhs();

 private:
  struct GlobalTriplet {
    GlobalId row = 0;
    GlobalId col = 0;
    double value = 0.0;
  };
  struct GlobalPair {
    GlobalId row = 0;
    double value = 0.0;
  };

  void first_finalize(simmpi::Comm& comm);
  void replay_finalize(simmpi::Comm& comm);
  void fast_replay_finalize(simmpi::Comm& comm);
  void build_fast_plan();
  void begin_fast_round();
  int owner_of_row(GlobalId row) const;

  std::vector<GlobalId> touched_;
  std::unordered_map<GlobalId, int> touched_owner_;
  std::optional<GidDirectory> directory_;

  // Pending contributions of the current round.
  std::vector<GlobalTriplet> mat_pending_;
  std::vector<GlobalPair> rhs_pending_;

  // Frozen structure.
  bool frozen_ = false;
  std::optional<IndexMap> map_;
  std::unique_ptr<HaloExchange> halo_;
  std::optional<DistCsrMatrix> matrix_;
  std::optional<DistVector> rhs_;

  // Replay plans (first-round routing, reused verbatim).
  // For matrix triplets: indices into mat_pending_ destined to each rank.
  std::vector<std::vector<std::size_t>> mat_route_;
  std::vector<std::size_t> mat_kept_;          // indices staying local
  std::vector<std::int64_t> mat_slots_;        // CSR slot per combined triplet
  std::vector<GlobalTriplet> mat_sequence_;    // first-round sequence (checks)
  std::vector<std::vector<std::size_t>> rhs_route_;
  std::vector<std::size_t> rhs_kept_;
  std::vector<int> rhs_slots_;                 // owned lid per combined pair
  std::vector<GlobalPair> rhs_sequence_;

  // Fast-replay scatter plan (derived from the frozen routing on the first
  // kFast round). Per sequence index: either the CSR slot (kept entries) or
  // the (rank, position) in the persistent routing buffers.
  bool fast_plan_built_ = false;
  bool fast_round_ = false;          // current round scatters at add time
  double* fast_values_ = nullptr;    // CSR values of the current fast round
  std::size_t mat_fast_pos_ = 0;     // sequence cursor of the current round
  std::size_t rhs_fast_pos_ = 0;
  std::int64_t mat_kept_count_ = 0;  // prefix of mat_slots_ that is local
  std::size_t rhs_kept_count_ = 0;
  std::vector<std::int64_t> mat_fast_slot_;   // CSR slot, or -1 when routed
  std::vector<std::int32_t> mat_fast_rank_;
  std::vector<std::int32_t> mat_fast_off_;    // position within rank block
  std::vector<std::int32_t> rhs_fast_lid_;    // owned lid, or -1 when routed
  std::vector<std::int32_t> rhs_fast_rank_;
  std::vector<std::int32_t> rhs_fast_off_;
  std::vector<std::vector<double>> mat_route_vals_;  // persistent send blocks
  std::vector<std::vector<double>> rhs_route_vals_;
};

}  // namespace hetero::la
