#pragma once

/// \file dist_vector.hpp
/// Distributed vector over an IndexMap: owned entries are authoritative,
/// ghost entries are a cache refreshed by HaloExchange::import_ghosts.
/// Reductions (dot, norms) run over owned entries plus one allreduce — the
/// latency-bound operation that dominates Krylov solvers at scale.

#include <span>
#include <vector>

#include "la/halo.hpp"
#include "la/index_map.hpp"

namespace hetero::la {

class DistVector {
 public:
  /// Zero-initialized vector over `map` (which must outlive the vector).
  explicit DistVector(const IndexMap& map);

  const IndexMap& map() const { return *map_; }
  int owned_count() const { return map_->owned_count(); }
  int local_count() const { return map_->local_count(); }

  double& operator[](int l) { return values_[static_cast<std::size_t>(l)]; }
  double operator[](int l) const {
    return values_[static_cast<std::size_t>(l)];
  }

  std::span<double> values() { return values_; }
  std::span<const double> values() const { return values_; }
  std::span<double> owned() {
    return {values_.data(), static_cast<std::size_t>(owned_count())};
  }
  std::span<const double> owned() const {
    return {values_.data(), static_cast<std::size_t>(owned_count())};
  }

  void set_all(double value);
  /// this = a*x + this (owned entries; ghosts left stale).
  void axpy(double a, const DistVector& x);
  /// this = a*x + b*this.
  void axpby(double a, const DistVector& x, double b);
  void scale(double a);
  /// Copies owned (and ghost) entries from x.
  void copy_from(const DistVector& x);

  /// Global dot product over owned entries; collective.
  double dot(simmpi::Comm& comm, const DistVector& other) const;
  /// Global 2-norm; collective.
  double norm2(simmpi::Comm& comm) const;
  /// Global infinity norm; collective.
  double norm_inf(simmpi::Comm& comm) const;

  /// Refreshes ghost entries from owners.
  void update_ghosts(simmpi::Comm& comm, const HaloExchange& halo) {
    halo.import_ghosts(comm, values_);
  }

 private:
  const IndexMap* map_;
  std::vector<double> values_;
};

}  // namespace hetero::la
