#pragma once

/// \file dist_vector.hpp
/// Distributed vector over an IndexMap: owned entries are authoritative,
/// ghost entries are a cache refreshed by HaloExchange::import_ghosts.
/// Reductions (dot, norms) run over owned entries plus one allreduce — the
/// latency-bound operation that dominates Krylov solvers at scale.
///
/// The fused operations (axpy_norm2, dot_pair, update_search_direction,
/// add_scaled, cg_update_norm2) collapse the separate update/reduce loops a
/// Krylov iteration performs into single passes. Every fused loop evaluates
/// the per-entry arithmetic in exactly the order the unfused calls would
/// (no reassociation), so results are bit-identical to the reference
/// sequence; under la::KernelMode::kReference they run the original unfused
/// calls instead, and dot_pair issues two allreduces rather than one.

#include <span>
#include <utility>
#include <vector>

#include "la/halo.hpp"
#include "la/index_map.hpp"

namespace hetero::la {

class DistVector {
 public:
  /// Zero-initialized vector over `map` (which must outlive the vector).
  explicit DistVector(const IndexMap& map);

  const IndexMap& map() const { return *map_; }
  int owned_count() const { return map_->owned_count(); }
  int local_count() const { return map_->local_count(); }

  double& operator[](int l) { return values_[static_cast<std::size_t>(l)]; }
  double operator[](int l) const {
    return values_[static_cast<std::size_t>(l)];
  }

  std::span<double> values() { return values_; }
  std::span<const double> values() const { return values_; }
  std::span<double> owned() {
    return {values_.data(), static_cast<std::size_t>(owned_count())};
  }
  std::span<const double> owned() const {
    return {values_.data(), static_cast<std::size_t>(owned_count())};
  }

  void set_all(double value);
  /// this = a*x + this (owned entries; ghosts left stale).
  void axpy(double a, const DistVector& x);
  /// this = a*x + b*this.
  void axpby(double a, const DistVector& x, double b);
  void scale(double a);
  /// Copies owned (and ghost) entries from x.
  void copy_from(const DistVector& x);

  /// Global dot product over owned entries; collective.
  double dot(simmpi::Comm& comm, const DistVector& other) const;
  /// Global 2-norm; collective.
  double norm2(simmpi::Comm& comm) const;
  /// Global infinity norm; collective.
  double norm_inf(simmpi::Comm& comm) const;

  // ---- fused kernels (collective ones say so) -----------------------------

  /// this += a*x (owned), then returns ||this||_2. One pass + one
  /// allreduce; collective.
  double axpy_norm2(simmpi::Comm& comm, double a, const DistVector& x);

  /// this = x (all local entries), this += a*y (owned), returns ||this||_2.
  /// Fuses the copy_from/axpy/norm2 triple BiCGStab performs; collective.
  double copy_axpy_norm2(simmpi::Comm& comm, const DistVector& x, double a,
                         const DistVector& y);

  /// (this . a, this . b) — fast mode pays one 2-element allreduce instead
  /// of two scalar ones; collective.
  std::pair<double, double> dot_pair(simmpi::Comm& comm, const DistVector& a,
                                     const DistVector& b) const;

  /// BiCGStab search-direction refresh: this = r + beta*(this - omega*v),
  /// evaluated entrywise as the axpy(-omega, v); axpby(1, r, beta) pair.
  void update_search_direction(const DistVector& r, const DistVector& v,
                               double beta, double omega);

  /// this += sum_i coeffs[i] * (*vs[i]) over owned entries, applied
  /// left-to-right like the equivalent axpy sequence (GMRES solution
  /// update).
  void add_scaled(std::span<const double> coeffs,
                  std::span<const DistVector* const> vs);

  /// Refreshes ghost entries from owners.
  void update_ghosts(simmpi::Comm& comm, const HaloExchange& halo) {
    halo.import_ghosts(comm, values_);
  }

 private:
  const IndexMap* map_;
  std::vector<double> values_;
};

/// The CG inner update, fused: x += alpha*p; r -= alpha*ap; returns
/// ||r||_2. One pass over both vectors plus the norm's allreduce;
/// collective.
double cg_update_norm2(simmpi::Comm& comm, DistVector& x, double alpha,
                       const DistVector& p, DistVector& r,
                       const DistVector& ap);

}  // namespace hetero::la
