#pragma once

/// \file halo.hpp
/// Ghost-value exchange plan over an IndexMap (Trilinos Import analogue).
///
/// Building the plan is collective: ghost consumers tell owners which of
/// their entries they need. Executing an import updates every ghost slot of
/// a local value array from its owner's owned slot, using point-to-point
/// messages between neighbouring ranks only — this is the communication the
/// paper's weak-scaling curves are sensitive to.

#include <cstdint>
#include <span>
#include <vector>

#include "la/index_map.hpp"

namespace hetero::la {

class HaloExchange {
 public:
  /// Collective. `map` must outlive the plan.
  HaloExchange(simmpi::Comm& comm, const IndexMap& map);

  /// Fills values[owned_count ...] from owners; values must have
  /// map.local_count() entries. Collective among neighbours.
  void import_ghosts(simmpi::Comm& comm, std::span<double> values) const;

  /// Reverse operation: adds each ghost slot's value into the owner's owned
  /// slot and zeroes the ghost slot (Trilinos Export-with-ADD analogue).
  void export_add(simmpi::Comm& comm, std::span<double> values) const;

  /// Ranks this rank exchanges data with (either direction).
  int neighbour_count() const { return static_cast<int>(peers_.size()); }

  /// Total doubles imported per exchange (ghost count).
  std::size_t import_size() const;

  /// Capacity of the persistent pack/unpack scratch, in doubles (the
  /// largest single peer message either direction). Exposed so tests can
  /// assert the plan allocates once at build time and reuses thereafter.
  std::size_t scratch_capacity() const { return scratch_.capacity(); }

 private:
  struct Peer {
    int rank = 0;
    /// Owned local indices this rank sends to `rank` on import (and
    /// receives-and-adds from on export).
    std::vector<int> send_lids;
    /// Ghost local indices filled from `rank` on import.
    std::vector<int> recv_lids;
  };

  const IndexMap* map_;
  std::vector<Peer> peers_;
  /// Persistent pack/unpack buffer, sized at build time to the largest peer
  /// message so exchanges never allocate. A plan belongs to one rank, and
  /// exchanges on it are not reentrant — mutable scratch is safe.
  mutable std::vector<double> scratch_;
};

}  // namespace hetero::la
