#include "la/system_builder.hpp"

#include <algorithm>

#include "la/kernels.hpp"
#include "support/error.hpp"

namespace hetero::la {

DistSystemBuilder::DistSystemBuilder(simmpi::Comm& comm,
                                     std::vector<GlobalId> touched)
    : touched_(std::move(touched)) {
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());
  directory_ = GidDirectory::build(comm, touched_);
  const auto owners = directory_->lookup(comm, touched_);
  touched_owner_.reserve(touched_.size());
  for (std::size_t i = 0; i < touched_.size(); ++i) {
    touched_owner_.emplace(touched_[i], owners[i]);
  }
}

void DistSystemBuilder::begin_assembly() {
  mat_pending_.clear();
  rhs_pending_.clear();
  if (frozen_ && kernel_mode() == KernelMode::kFast) {
    begin_fast_round();
  } else {
    fast_round_ = false;
  }
}

void DistSystemBuilder::add_matrix(GlobalId row, GlobalId col, double value) {
  if (fast_round_) {
    const std::size_t i = mat_fast_pos_++;
    HETERO_REQUIRE(i < mat_sequence_.size(),
                   "refill produced a different number of matrix entries");
    HETERO_REQUIRE(mat_sequence_[i].row == row && mat_sequence_[i].col == col,
                   "refill changed the matrix sparsity sequence");
    const std::int64_t slot = mat_fast_slot_[i];
    if (slot >= 0) {
      fast_values_[slot] += value;
    } else {
      mat_route_vals_[static_cast<std::size_t>(mat_fast_rank_[i])]
                     [static_cast<std::size_t>(mat_fast_off_[i])] = value;
    }
    return;
  }
  mat_pending_.push_back({row, col, value});
}

void DistSystemBuilder::add_rhs(GlobalId row, double value) {
  if (fast_round_) {
    const std::size_t i = rhs_fast_pos_++;
    HETERO_REQUIRE(i < rhs_sequence_.size(),
                   "refill produced a different number of rhs entries");
    HETERO_REQUIRE(rhs_sequence_[i].row == row,
                   "refill changed the rhs sequence");
    const std::int32_t lid = rhs_fast_lid_[i];
    if (lid >= 0) {
      (*rhs_)[lid] += value;
    } else {
      rhs_route_vals_[static_cast<std::size_t>(rhs_fast_rank_[i])]
                     [static_cast<std::size_t>(rhs_fast_off_[i])] = value;
    }
    return;
  }
  rhs_pending_.push_back({row, value});
}

void DistSystemBuilder::add_dense_block(std::span<const GlobalId> rows,
                                        std::span<const GlobalId> cols,
                                        std::span<const double> block) {
  HETERO_REQUIRE(block.size() == rows.size() * cols.size(),
                 "add_dense_block: block shape mismatch");
  std::size_t k = 0;
  for (const GlobalId row : rows) {
    for (const GlobalId col : cols) {
      add_matrix(row, col, block[k++]);
    }
  }
}

void DistSystemBuilder::add_rhs_block(std::span<const GlobalId> rows,
                                      std::span<const double> values) {
  HETERO_REQUIRE(values.size() == rows.size(),
                 "add_rhs_block: size mismatch");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    add_rhs(rows[i], values[i]);
  }
}

int DistSystemBuilder::owner_of_row(GlobalId row) const {
  const auto it = touched_owner_.find(row);
  HETERO_REQUIRE(it != touched_owner_.end(),
                 "contribution to a row this rank never declared as touched");
  return it->second;
}

void DistSystemBuilder::finalize(simmpi::Comm& comm) {
  if (!frozen_) {
    first_finalize(comm);
  } else if (fast_round_) {
    fast_replay_finalize(comm);
  } else {
    replay_finalize(comm);
  }
}

void DistSystemBuilder::build_fast_plan() {
  const std::size_t p = mat_route_.size();

  mat_kept_count_ = static_cast<std::int64_t>(mat_kept_.size());
  mat_fast_slot_.assign(mat_sequence_.size(), -1);
  mat_fast_rank_.assign(mat_sequence_.size(), -1);
  mat_fast_off_.assign(mat_sequence_.size(), -1);
  for (std::size_t j = 0; j < mat_kept_.size(); ++j) {
    mat_fast_slot_[mat_kept_[j]] = mat_slots_[j];
  }
  mat_route_vals_.assign(p, {});
  for (std::size_t r = 0; r < p; ++r) {
    mat_route_vals_[r].resize(mat_route_[r].size());
    for (std::size_t off = 0; off < mat_route_[r].size(); ++off) {
      mat_fast_rank_[mat_route_[r][off]] = static_cast<std::int32_t>(r);
      mat_fast_off_[mat_route_[r][off]] = static_cast<std::int32_t>(off);
    }
  }

  rhs_kept_count_ = rhs_kept_.size();
  rhs_fast_lid_.assign(rhs_sequence_.size(), -1);
  rhs_fast_rank_.assign(rhs_sequence_.size(), -1);
  rhs_fast_off_.assign(rhs_sequence_.size(), -1);
  for (std::size_t j = 0; j < rhs_kept_.size(); ++j) {
    rhs_fast_lid_[rhs_kept_[j]] = rhs_slots_[j];
  }
  rhs_route_vals_.assign(p, {});
  for (std::size_t r = 0; r < p; ++r) {
    rhs_route_vals_[r].resize(rhs_route_[r].size());
    for (std::size_t off = 0; off < rhs_route_[r].size(); ++off) {
      rhs_fast_rank_[rhs_route_[r][off]] = static_cast<std::int32_t>(r);
      rhs_fast_off_[rhs_route_[r][off]] = static_cast<std::int32_t>(off);
    }
  }
  fast_plan_built_ = true;
}

void DistSystemBuilder::begin_fast_round() {
  if (!fast_plan_built_) {
    build_fast_plan();
  }
  mat_fast_pos_ = 0;
  rhs_fast_pos_ = 0;
  // Zero up front (the reference replay zeroes at finalize); kept entries
  // then accumulate in add order, exactly the prefix of the reference
  // accumulation sequence.
  auto values = matrix_->local_mut().values_mut();
  std::fill(values.begin(), values.end(), 0.0);
  fast_values_ = values.data();
  rhs_->set_all(0.0);
  fast_round_ = true;
}

void DistSystemBuilder::fast_replay_finalize(simmpi::Comm& comm) {
  HETERO_REQUIRE(mat_fast_pos_ == mat_sequence_.size(),
                 "refill produced a different number of matrix entries");
  HETERO_REQUIRE(rhs_fast_pos_ == rhs_sequence_.size(),
                 "refill produced a different number of rhs entries");
  // Kept values are already in place; ship the routed blocks and accumulate
  // them after, per source rank — the reference replay's order.
  const auto mat_in = comm.alltoallv(mat_route_vals_);
  const auto rhs_in = comm.alltoallv(rhs_route_vals_);

  auto values = matrix_->local_mut().values_mut();
  std::size_t k = static_cast<std::size_t>(mat_kept_count_);
  for (const auto& block : mat_in) {
    for (double v : block) {
      values[static_cast<std::size_t>(mat_slots_[k++])] += v;
    }
  }
  HETERO_CHECK(k == mat_slots_.size());

  k = rhs_kept_count_;
  for (const auto& block : rhs_in) {
    for (double v : block) {
      (*rhs_)[rhs_slots_[k++]] += v;
    }
  }
  HETERO_CHECK(k == rhs_slots_.size());
  fast_round_ = false;
  fast_values_ = nullptr;
}

void DistSystemBuilder::first_finalize(simmpi::Comm& comm) {
  const int p = comm.size();
  const int me = comm.rank();

  // ---- route matrix triplets by row owner -------------------------------
  mat_route_.assign(static_cast<std::size_t>(p), {});
  mat_kept_.clear();
  for (std::size_t i = 0; i < mat_pending_.size(); ++i) {
    const int owner = owner_of_row(mat_pending_[i].row);
    if (owner == me) {
      mat_kept_.push_back(i);
    } else {
      mat_route_[static_cast<std::size_t>(owner)].push_back(i);
    }
  }
  std::vector<std::vector<GlobalTriplet>> mat_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i : mat_route_[static_cast<std::size_t>(r)]) {
      mat_out[static_cast<std::size_t>(r)].push_back(mat_pending_[i]);
    }
  }
  const auto mat_in = comm.alltoallv(mat_out);

  // Combined deterministic order: kept first, then per-source blocks.
  std::vector<GlobalTriplet> combined;
  combined.reserve(mat_kept_.size());
  for (std::size_t i : mat_kept_) {
    combined.push_back(mat_pending_[i]);
  }
  for (const auto& block : mat_in) {
    combined.insert(combined.end(), block.begin(), block.end());
  }

  // ---- route rhs pairs ---------------------------------------------------
  rhs_route_.assign(static_cast<std::size_t>(p), {});
  rhs_kept_.clear();
  for (std::size_t i = 0; i < rhs_pending_.size(); ++i) {
    const int owner = owner_of_row(rhs_pending_[i].row);
    if (owner == me) {
      rhs_kept_.push_back(i);
    } else {
      rhs_route_[static_cast<std::size_t>(owner)].push_back(i);
    }
  }
  std::vector<std::vector<GlobalPair>> rhs_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i : rhs_route_[static_cast<std::size_t>(r)]) {
      rhs_out[static_cast<std::size_t>(r)].push_back(rhs_pending_[i]);
    }
  }
  const auto rhs_in = comm.alltoallv(rhs_out);
  std::vector<GlobalPair> rhs_combined;
  for (std::size_t i : rhs_kept_) {
    rhs_combined.push_back(rhs_pending_[i]);
  }
  for (const auto& block : rhs_in) {
    rhs_combined.insert(rhs_combined.end(), block.begin(), block.end());
  }

  // ---- resolve columns and build the index map ---------------------------
  std::vector<GlobalId> extra;
  for (const auto& t : combined) {
    if (touched_owner_.find(t.col) == touched_owner_.end()) {
      extra.push_back(t.col);
    }
  }
  map_ = IndexMap::build(comm, *directory_, touched_, extra);
  halo_ = std::make_unique<HaloExchange>(comm, *map_);

  // ---- build the CSR pattern + value slots --------------------------------
  std::vector<Triplet> local;
  local.reserve(combined.size());
  for (const auto& t : combined) {
    const int rl = map_->local(t.row);
    const int cl = map_->local(t.col);
    HETERO_CHECK(rl != kInvalidLocal && map_->is_owned_local(rl));
    HETERO_CHECK(cl != kInvalidLocal);
    local.push_back({rl, cl, t.value});
  }
  CsrMatrix csr = CsrMatrix::from_triplets(map_->owned_count(),
                                           map_->local_count(), local);
  mat_slots_.resize(combined.size());
  for (std::size_t i = 0; i < combined.size(); ++i) {
    mat_slots_[i] = csr.slot(local[i].row, local[i].col);
    HETERO_CHECK(mat_slots_[i] >= 0);
  }
  matrix_.emplace(*map_, *halo_, std::move(csr));

  rhs_.emplace(*map_);
  rhs_slots_.resize(rhs_combined.size());
  for (std::size_t i = 0; i < rhs_combined.size(); ++i) {
    const int rl = map_->local(rhs_combined[i].row);
    HETERO_CHECK(rl != kInvalidLocal && map_->is_owned_local(rl));
    rhs_slots_[i] = rl;
    (*rhs_)[rl] += rhs_combined[i].value;
  }

  mat_sequence_ = std::move(mat_pending_);
  rhs_sequence_ = std::move(rhs_pending_);
  mat_pending_.clear();
  rhs_pending_.clear();
  frozen_ = true;
}

void DistSystemBuilder::replay_finalize(simmpi::Comm& comm) {
  const int p = comm.size();
  HETERO_REQUIRE(mat_pending_.size() == mat_sequence_.size(),
                 "refill produced a different number of matrix entries");
  HETERO_REQUIRE(rhs_pending_.size() == rhs_sequence_.size(),
                 "refill produced a different number of rhs entries");
  // Structural identity check (indices must repeat exactly).
  for (std::size_t i = 0; i < mat_pending_.size(); ++i) {
    HETERO_REQUIRE(mat_pending_[i].row == mat_sequence_[i].row &&
                       mat_pending_[i].col == mat_sequence_[i].col,
                   "refill changed the matrix sparsity sequence");
  }
  for (std::size_t i = 0; i < rhs_pending_.size(); ++i) {
    HETERO_REQUIRE(rhs_pending_[i].row == rhs_sequence_[i].row,
                   "refill changed the rhs sequence");
  }

  // Ship values only, in the frozen routing order.
  std::vector<std::vector<double>> mat_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i : mat_route_[static_cast<std::size_t>(r)]) {
      mat_out[static_cast<std::size_t>(r)].push_back(mat_pending_[i].value);
    }
  }
  const auto mat_in = comm.alltoallv(mat_out);
  std::vector<std::vector<double>> rhs_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i : rhs_route_[static_cast<std::size_t>(r)]) {
      rhs_out[static_cast<std::size_t>(r)].push_back(rhs_pending_[i].value);
    }
  }
  const auto rhs_in = comm.alltoallv(rhs_out);

  auto values = matrix_->local_mut().values_mut();
  std::fill(values.begin(), values.end(), 0.0);
  std::size_t k = 0;
  for (std::size_t i : mat_kept_) {
    values[static_cast<std::size_t>(mat_slots_[k++])] +=
        mat_pending_[i].value;
  }
  for (const auto& block : mat_in) {
    for (double v : block) {
      values[static_cast<std::size_t>(mat_slots_[k++])] += v;
    }
  }
  HETERO_CHECK(k == mat_slots_.size());

  rhs_->set_all(0.0);
  k = 0;
  for (std::size_t i : rhs_kept_) {
    (*rhs_)[rhs_slots_[k++]] += rhs_pending_[i].value;
  }
  for (const auto& block : rhs_in) {
    for (double v : block) {
      (*rhs_)[rhs_slots_[k++]] += v;
    }
  }
  HETERO_CHECK(k == rhs_slots_.size());

  mat_pending_.clear();
  rhs_pending_.clear();
}

const IndexMap& DistSystemBuilder::map() const {
  HETERO_REQUIRE(frozen_, "map() requires a finalized system");
  return *map_;
}

const HaloExchange& DistSystemBuilder::halo() const {
  HETERO_REQUIRE(frozen_, "halo() requires a finalized system");
  return *halo_;
}

DistCsrMatrix& DistSystemBuilder::matrix() {
  HETERO_REQUIRE(frozen_, "matrix() requires a finalized system");
  return *matrix_;
}

const DistCsrMatrix& DistSystemBuilder::matrix() const {
  HETERO_REQUIRE(frozen_, "matrix() requires a finalized system");
  return *matrix_;
}

DistVector& DistSystemBuilder::rhs() {
  HETERO_REQUIRE(frozen_, "rhs() requires a finalized system");
  return *rhs_;
}

}  // namespace hetero::la
