#include "la/system_builder.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace hetero::la {

DistSystemBuilder::DistSystemBuilder(simmpi::Comm& comm,
                                     std::vector<GlobalId> touched)
    : touched_(std::move(touched)) {
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());
  directory_ = GidDirectory::build(comm, touched_);
  const auto owners = directory_->lookup(comm, touched_);
  touched_owner_.reserve(touched_.size());
  for (std::size_t i = 0; i < touched_.size(); ++i) {
    touched_owner_.emplace(touched_[i], owners[i]);
  }
}

void DistSystemBuilder::begin_assembly() {
  mat_pending_.clear();
  rhs_pending_.clear();
}

void DistSystemBuilder::add_matrix(GlobalId row, GlobalId col, double value) {
  mat_pending_.push_back({row, col, value});
}

void DistSystemBuilder::add_rhs(GlobalId row, double value) {
  rhs_pending_.push_back({row, value});
}

int DistSystemBuilder::owner_of_row(GlobalId row) const {
  const auto it = touched_owner_.find(row);
  HETERO_REQUIRE(it != touched_owner_.end(),
                 "contribution to a row this rank never declared as touched");
  return it->second;
}

void DistSystemBuilder::finalize(simmpi::Comm& comm) {
  if (!frozen_) {
    first_finalize(comm);
  } else {
    replay_finalize(comm);
  }
}

void DistSystemBuilder::first_finalize(simmpi::Comm& comm) {
  const int p = comm.size();
  const int me = comm.rank();

  // ---- route matrix triplets by row owner -------------------------------
  mat_route_.assign(static_cast<std::size_t>(p), {});
  mat_kept_.clear();
  for (std::size_t i = 0; i < mat_pending_.size(); ++i) {
    const int owner = owner_of_row(mat_pending_[i].row);
    if (owner == me) {
      mat_kept_.push_back(i);
    } else {
      mat_route_[static_cast<std::size_t>(owner)].push_back(i);
    }
  }
  std::vector<std::vector<GlobalTriplet>> mat_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i : mat_route_[static_cast<std::size_t>(r)]) {
      mat_out[static_cast<std::size_t>(r)].push_back(mat_pending_[i]);
    }
  }
  const auto mat_in = comm.alltoallv(mat_out);

  // Combined deterministic order: kept first, then per-source blocks.
  std::vector<GlobalTriplet> combined;
  combined.reserve(mat_kept_.size());
  for (std::size_t i : mat_kept_) {
    combined.push_back(mat_pending_[i]);
  }
  for (const auto& block : mat_in) {
    combined.insert(combined.end(), block.begin(), block.end());
  }

  // ---- route rhs pairs ---------------------------------------------------
  rhs_route_.assign(static_cast<std::size_t>(p), {});
  rhs_kept_.clear();
  for (std::size_t i = 0; i < rhs_pending_.size(); ++i) {
    const int owner = owner_of_row(rhs_pending_[i].row);
    if (owner == me) {
      rhs_kept_.push_back(i);
    } else {
      rhs_route_[static_cast<std::size_t>(owner)].push_back(i);
    }
  }
  std::vector<std::vector<GlobalPair>> rhs_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i : rhs_route_[static_cast<std::size_t>(r)]) {
      rhs_out[static_cast<std::size_t>(r)].push_back(rhs_pending_[i]);
    }
  }
  const auto rhs_in = comm.alltoallv(rhs_out);
  std::vector<GlobalPair> rhs_combined;
  for (std::size_t i : rhs_kept_) {
    rhs_combined.push_back(rhs_pending_[i]);
  }
  for (const auto& block : rhs_in) {
    rhs_combined.insert(rhs_combined.end(), block.begin(), block.end());
  }

  // ---- resolve columns and build the index map ---------------------------
  std::vector<GlobalId> extra;
  for (const auto& t : combined) {
    if (touched_owner_.find(t.col) == touched_owner_.end()) {
      extra.push_back(t.col);
    }
  }
  map_ = IndexMap::build(comm, *directory_, touched_, extra);
  halo_ = std::make_unique<HaloExchange>(comm, *map_);

  // ---- build the CSR pattern + value slots --------------------------------
  std::vector<Triplet> local;
  local.reserve(combined.size());
  for (const auto& t : combined) {
    const int rl = map_->local(t.row);
    const int cl = map_->local(t.col);
    HETERO_CHECK(rl != kInvalidLocal && map_->is_owned_local(rl));
    HETERO_CHECK(cl != kInvalidLocal);
    local.push_back({rl, cl, t.value});
  }
  CsrMatrix csr = CsrMatrix::from_triplets(map_->owned_count(),
                                           map_->local_count(), local);
  mat_slots_.resize(combined.size());
  for (std::size_t i = 0; i < combined.size(); ++i) {
    mat_slots_[i] = csr.slot(local[i].row, local[i].col);
    HETERO_CHECK(mat_slots_[i] >= 0);
  }
  matrix_.emplace(*map_, *halo_, std::move(csr));

  rhs_.emplace(*map_);
  rhs_slots_.resize(rhs_combined.size());
  for (std::size_t i = 0; i < rhs_combined.size(); ++i) {
    const int rl = map_->local(rhs_combined[i].row);
    HETERO_CHECK(rl != kInvalidLocal && map_->is_owned_local(rl));
    rhs_slots_[i] = rl;
    (*rhs_)[rl] += rhs_combined[i].value;
  }

  mat_sequence_ = std::move(mat_pending_);
  rhs_sequence_ = std::move(rhs_pending_);
  mat_pending_.clear();
  rhs_pending_.clear();
  frozen_ = true;
}

void DistSystemBuilder::replay_finalize(simmpi::Comm& comm) {
  const int p = comm.size();
  HETERO_REQUIRE(mat_pending_.size() == mat_sequence_.size(),
                 "refill produced a different number of matrix entries");
  HETERO_REQUIRE(rhs_pending_.size() == rhs_sequence_.size(),
                 "refill produced a different number of rhs entries");
  // Structural identity check (indices must repeat exactly).
  for (std::size_t i = 0; i < mat_pending_.size(); ++i) {
    HETERO_REQUIRE(mat_pending_[i].row == mat_sequence_[i].row &&
                       mat_pending_[i].col == mat_sequence_[i].col,
                   "refill changed the matrix sparsity sequence");
  }
  for (std::size_t i = 0; i < rhs_pending_.size(); ++i) {
    HETERO_REQUIRE(rhs_pending_[i].row == rhs_sequence_[i].row,
                   "refill changed the rhs sequence");
  }

  // Ship values only, in the frozen routing order.
  std::vector<std::vector<double>> mat_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i : mat_route_[static_cast<std::size_t>(r)]) {
      mat_out[static_cast<std::size_t>(r)].push_back(mat_pending_[i].value);
    }
  }
  const auto mat_in = comm.alltoallv(mat_out);
  std::vector<std::vector<double>> rhs_out(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (std::size_t i : rhs_route_[static_cast<std::size_t>(r)]) {
      rhs_out[static_cast<std::size_t>(r)].push_back(rhs_pending_[i].value);
    }
  }
  const auto rhs_in = comm.alltoallv(rhs_out);

  auto values = matrix_->local_mut().values_mut();
  std::fill(values.begin(), values.end(), 0.0);
  std::size_t k = 0;
  for (std::size_t i : mat_kept_) {
    values[static_cast<std::size_t>(mat_slots_[k++])] +=
        mat_pending_[i].value;
  }
  for (const auto& block : mat_in) {
    for (double v : block) {
      values[static_cast<std::size_t>(mat_slots_[k++])] += v;
    }
  }
  HETERO_CHECK(k == mat_slots_.size());

  rhs_->set_all(0.0);
  k = 0;
  for (std::size_t i : rhs_kept_) {
    (*rhs_)[rhs_slots_[k++]] += rhs_pending_[i].value;
  }
  for (const auto& block : rhs_in) {
    for (double v : block) {
      (*rhs_)[rhs_slots_[k++]] += v;
    }
  }
  HETERO_CHECK(k == rhs_slots_.size());

  mat_pending_.clear();
  rhs_pending_.clear();
}

const IndexMap& DistSystemBuilder::map() const {
  HETERO_REQUIRE(frozen_, "map() requires a finalized system");
  return *map_;
}

const HaloExchange& DistSystemBuilder::halo() const {
  HETERO_REQUIRE(frozen_, "halo() requires a finalized system");
  return *halo_;
}

DistCsrMatrix& DistSystemBuilder::matrix() {
  HETERO_REQUIRE(frozen_, "matrix() requires a finalized system");
  return *matrix_;
}

const DistCsrMatrix& DistSystemBuilder::matrix() const {
  HETERO_REQUIRE(frozen_, "matrix() requires a finalized system");
  return *matrix_;
}

DistVector& DistSystemBuilder::rhs() {
  HETERO_REQUIRE(frozen_, "rhs() requires a finalized system");
  return *rhs_;
}

}  // namespace hetero::la
