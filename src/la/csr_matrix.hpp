#pragma once

/// \file csr_matrix.hpp
/// Serial compressed-sparse-row matrix: the local block every rank holds.
/// Provides the kernels the solvers are built from (spmv, triangular solves
/// for ILU(0)) plus a COO-triplet builder with duplicate merging.
///
/// SpMV dispatches on la::kernel_mode(): the reference path is the original
/// scalar row loop; the fast path runs four rows in lockstep so the four
/// independent accumulator chains overlap in the pipeline. Each row's
/// products are still added in ascending-slot order, so both paths produce
/// bit-identical results. Configuring with -DHETERO_SPMV_LAYOUT=sell
/// additionally builds a SELL-C-sigma mirror of the matrix (chunked,
/// column-major, rows sorted by length within a sigma window) that the fast
/// path multiplies from; the mirror's values refresh lazily whenever
/// values_mut() has been called (a version counter tracks mutations by the
/// assembly replay and Dirichlet elimination).

#include <cstdint>
#include <span>
#include <vector>

namespace hetero::la {

/// (row, col, value) assembly triplet with *local* indices.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicates are summed. `rows`/`cols` give the
  /// matrix shape (cols may exceed rows: ghost columns).
  static CsrMatrix from_triplets(int rows, int cols,
                                 std::span<const Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t nonzeros() const {
    return static_cast<std::int64_t>(values_.size());
  }

  std::span<const std::int64_t> row_ptr() const { return row_ptr_; }
  std::span<const int> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }
  /// Mutable values. Each call marks the values as modified so layout
  /// mirrors (SELL) refresh before the next multiply.
  std::span<double> values_mut() {
    ++values_version_;
    return values_;
  }

  /// y = A x. `x` must have cols() entries, `y` rows() entries.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y += A x.
  void multiply_add(std::span<const double> x, std::span<double> y) const;

  /// Value at (row, col) or 0 when not stored.
  double at(int row, int col) const;

  /// Pointer to the stored slot (row, col), or -1 when not present.
  std::int64_t slot(int row, int col) const;

  /// The main diagonal (missing entries read as 0).
  std::vector<double> diagonal() const;

  /// max |A(i,j) - A(j,i)| over the square part of the matrix (entries
  /// outside min(rows, cols) are ignored). 0 for symmetric matrices —
  /// a diagnostic the FEM tests use to certify assembled operators.
  double symmetry_error() const;

  /// Frobenius norm of the stored values.
  double frobenius_norm() const;

 private:
  void multiply_impl(std::span<const double> x, std::span<double> y,
                     bool accumulate) const;

  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
  std::uint64_t values_version_ = 0;

#ifdef HETERO_SPMV_SELL
  /// SELL-C-sigma mirror, built on first fast-path multiply. `rows` maps
  /// each chunk lane back to its CSR row (-1 for padding lanes); values
  /// re-pack whenever values_version changes.
  struct SellMirror {
    bool built = false;
    std::uint64_t packed_version = 0;
    int chunk_count = 0;
    std::vector<int> rows;             // chunk_count * C lane -> CSR row
    std::vector<int> lane_len;         // entries per lane
    std::vector<std::int64_t> chunk_ptr;  // offsets into col/val
    std::vector<int> col;
    std::vector<double> val;
  };
  mutable SellMirror sell_;
  void sell_build() const;
  void sell_pack_values() const;
  void sell_multiply(std::span<const double> x, std::span<double> y,
                     bool accumulate) const;
#endif
};

}  // namespace hetero::la
