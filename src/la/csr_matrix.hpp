#pragma once

/// \file csr_matrix.hpp
/// Serial compressed-sparse-row matrix: the local block every rank holds.
/// Provides the kernels the solvers are built from (spmv, triangular solves
/// for ILU(0)) plus a COO-triplet builder with duplicate merging.

#include <cstdint>
#include <span>
#include <vector>

namespace hetero::la {

/// (row, col, value) assembly triplet with *local* indices.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicates are summed. `rows`/`cols` give the
  /// matrix shape (cols may exceed rows: ghost columns).
  static CsrMatrix from_triplets(int rows, int cols,
                                 std::span<const Triplet> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t nonzeros() const {
    return static_cast<std::int64_t>(values_.size());
  }

  std::span<const std::int64_t> row_ptr() const { return row_ptr_; }
  std::span<const int> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }
  std::span<double> values_mut() { return values_; }

  /// y = A x. `x` must have cols() entries, `y` rows() entries.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y += A x.
  void multiply_add(std::span<const double> x, std::span<double> y) const;

  /// Value at (row, col) or 0 when not stored.
  double at(int row, int col) const;

  /// Pointer to the stored slot (row, col), or -1 when not present.
  std::int64_t slot(int row, int col) const;

  /// The main diagonal (missing entries read as 0).
  std::vector<double> diagonal() const;

  /// max |A(i,j) - A(j,i)| over the square part of the matrix (entries
  /// outside min(rows, cols) are ignored). 0 for symmetric matrices —
  /// a diagnostic the FEM tests use to certify assembled operators.
  double symmetry_error() const;

  /// Frobenius norm of the stored values.
  double frobenius_norm() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

}  // namespace hetero::la
