#include "la/csr_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels.hpp"
#include "support/error.hpp"

namespace hetero::la {

CsrMatrix CsrMatrix::from_triplets(int rows, int cols,
                                   std::span<const Triplet> triplets) {
  HETERO_REQUIRE(rows >= 0 && cols >= 0, "matrix shape must be non-negative");
  std::vector<Triplet> sorted(triplets.begin(), triplets.end());
  for (const auto& t : sorted) {
    HETERO_REQUIRE(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                   "triplet index out of range");
  }
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a,
                                             const Triplet& b) {
    return a.row < b.row || (a.row == b.row && a.col < b.col);
  });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(sorted.size());
  m.values_.reserve(sorted.size());
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < sorted.size() && sorted[i].row == r) {
      const int c = sorted[i].col;
      double v = 0.0;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
        v += sorted[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
    m.row_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(m.col_idx_.size());
  }
  return m;
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  multiply_impl(x, y, /*accumulate=*/false);
}

void CsrMatrix::multiply_add(std::span<const double> x,
                             std::span<double> y) const {
  multiply_impl(x, y, /*accumulate=*/true);
}

void CsrMatrix::multiply_impl(std::span<const double> x, std::span<double> y,
                              bool accumulate) const {
  HETERO_REQUIRE(static_cast<int>(x.size()) == cols_ &&
                     static_cast<int>(y.size()) == rows_,
                 "spmv: size mismatch");
  const std::int64_t nnz = nonzeros();
  // 2 flops per stored entry; bytes = val+col streams, row_ptr, the y
  // write-back (plus read when accumulating), and one x gather per entry.
  spmv_work().add(2 * nnz,
                  nnz * (8 + 4 + 8) + static_cast<std::int64_t>(rows_) *
                                          (8 + (accumulate ? 16 : 8)));

  if (kernel_mode() == KernelMode::kReference) {
    for (int r = 0; r < rows_; ++r) {
      double acc =
          accumulate ? y[static_cast<std::size_t>(r)] : 0.0;
      const auto begin =
          static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
      const auto end =
          static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
      for (std::size_t k = begin; k < end; ++k) {
        acc += values_[k] * x[static_cast<std::size_t>(col_idx_[k])];
      }
      y[static_cast<std::size_t>(r)] = acc;
    }
    return;
  }

#ifdef HETERO_SPMV_SELL
  sell_multiply(x, y, accumulate);
#else
  // Fast path: four rows in lockstep. Each row keeps a private accumulator
  // fed in ascending-slot order — the same chain as the reference loop, so
  // results are bit-identical — while the four chains overlap in the
  // pipeline instead of serializing on one accumulator's latency.
  const std::int64_t* rp = row_ptr_.data();
  const int* ci = col_idx_.data();
  const double* v = values_.data();
  const double* xp = x.data();
  double* yp = y.data();
  int r = 0;
  for (; r + 4 <= rows_; r += 4) {
    std::int64_t k0 = rp[r], k1 = rp[r + 1], k2 = rp[r + 2], k3 = rp[r + 3];
    const std::int64_t e0 = rp[r + 1], e1 = rp[r + 2], e2 = rp[r + 3],
                       e3 = rp[r + 4];
    double a0 = accumulate ? yp[r] : 0.0;
    double a1 = accumulate ? yp[r + 1] : 0.0;
    double a2 = accumulate ? yp[r + 2] : 0.0;
    double a3 = accumulate ? yp[r + 3] : 0.0;
    const std::int64_t m = std::min(std::min(e0 - k0, e1 - k1),
                                    std::min(e2 - k2, e3 - k3));
    for (std::int64_t j = 0; j < m; ++j) {
      a0 += v[k0 + j] * xp[ci[k0 + j]];
      a1 += v[k1 + j] * xp[ci[k1 + j]];
      a2 += v[k2 + j] * xp[ci[k2 + j]];
      a3 += v[k3 + j] * xp[ci[k3 + j]];
    }
    for (std::int64_t k = k0 + m; k < e0; ++k) a0 += v[k] * xp[ci[k]];
    for (std::int64_t k = k1 + m; k < e1; ++k) a1 += v[k] * xp[ci[k]];
    for (std::int64_t k = k2 + m; k < e2; ++k) a2 += v[k] * xp[ci[k]];
    for (std::int64_t k = k3 + m; k < e3; ++k) a3 += v[k] * xp[ci[k]];
    yp[r] = a0;
    yp[r + 1] = a1;
    yp[r + 2] = a2;
    yp[r + 3] = a3;
  }
  for (; r < rows_; ++r) {
    double acc = accumulate ? yp[r] : 0.0;
    const std::int64_t end = rp[r + 1];
    for (std::int64_t k = rp[r]; k < end; ++k) {
      acc += v[k] * xp[ci[k]];
    }
    yp[r] = acc;
  }
#endif
}

#ifdef HETERO_SPMV_SELL
namespace {
constexpr int kSellChunk = 8;    // C: rows per chunk (one lane each)
constexpr int kSellSigma = 128;  // sigma: length-sort window, in rows
}  // namespace

void CsrMatrix::sell_build() const {
  auto& s = sell_;
  // Sort rows by descending length inside each sigma window (stable, so
  // equal-length rows keep mesh order and runs stay deterministic).
  std::vector<int> order(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) {
    order[static_cast<std::size_t>(r)] = r;
  }
  auto row_len = [&](int r) {
    return row_ptr_[static_cast<std::size_t>(r) + 1] -
           row_ptr_[static_cast<std::size_t>(r)];
  };
  for (int w = 0; w < rows_; w += kSellSigma) {
    const auto begin = order.begin() + w;
    const auto end = order.begin() + std::min(rows_, w + kSellSigma);
    std::stable_sort(begin, end,
                     [&](int a, int b) { return row_len(a) > row_len(b); });
  }

  s.chunk_count = (rows_ + kSellChunk - 1) / kSellChunk;
  s.rows.assign(static_cast<std::size_t>(s.chunk_count) * kSellChunk, -1);
  s.lane_len.assign(static_cast<std::size_t>(s.chunk_count) * kSellChunk, 0);
  s.chunk_ptr.assign(static_cast<std::size_t>(s.chunk_count) + 1, 0);
  for (int c = 0; c < s.chunk_count; ++c) {
    std::int64_t width = 0;
    for (int lane = 0; lane < kSellChunk; ++lane) {
      const int pos = c * kSellChunk + lane;
      if (pos >= rows_) {
        break;
      }
      const int row = order[static_cast<std::size_t>(pos)];
      const std::size_t slot = static_cast<std::size_t>(pos);
      s.rows[slot] = row;
      s.lane_len[slot] = static_cast<int>(row_len(row));
      width = std::max(width, row_len(row));
    }
    s.chunk_ptr[static_cast<std::size_t>(c) + 1] =
        s.chunk_ptr[static_cast<std::size_t>(c)] + width * kSellChunk;
  }
  const auto total =
      static_cast<std::size_t>(s.chunk_ptr[static_cast<std::size_t>(s.chunk_count)]);
  s.col.assign(total, 0);
  s.val.assign(total, 0.0);
  for (int c = 0; c < s.chunk_count; ++c) {
    const std::int64_t base = s.chunk_ptr[static_cast<std::size_t>(c)];
    for (int lane = 0; lane < kSellChunk; ++lane) {
      const std::size_t slot =
          static_cast<std::size_t>(c) * kSellChunk +
          static_cast<std::size_t>(lane);
      const int row = s.rows[slot];
      if (row < 0) {
        continue;
      }
      const std::int64_t rbegin = row_ptr_[static_cast<std::size_t>(row)];
      for (int j = 0; j < s.lane_len[slot]; ++j) {
        s.col[static_cast<std::size_t>(base + j * kSellChunk + lane)] =
            col_idx_[static_cast<std::size_t>(rbegin + j)];
      }
    }
  }
  s.built = true;
}

void CsrMatrix::sell_pack_values() const {
  auto& s = sell_;
  for (int c = 0; c < s.chunk_count; ++c) {
    const std::int64_t base = s.chunk_ptr[static_cast<std::size_t>(c)];
    for (int lane = 0; lane < kSellChunk; ++lane) {
      const std::size_t slot =
          static_cast<std::size_t>(c) * kSellChunk +
          static_cast<std::size_t>(lane);
      const int row = s.rows[slot];
      if (row < 0) {
        continue;
      }
      const std::int64_t rbegin = row_ptr_[static_cast<std::size_t>(row)];
      for (int j = 0; j < s.lane_len[slot]; ++j) {
        s.val[static_cast<std::size_t>(base + j * kSellChunk + lane)] =
            values_[static_cast<std::size_t>(rbegin + j)];
      }
    }
  }
  s.packed_version = values_version_;
}

void CsrMatrix::sell_multiply(std::span<const double> x, std::span<double> y,
                              bool accumulate) const {
  auto& s = sell_;
  if (!s.built) {
    sell_build();
    sell_pack_values();
  } else if (s.packed_version != values_version_) {
    sell_pack_values();
  }
  const double* xp = x.data();
  double* yp = y.data();
  for (int c = 0; c < s.chunk_count; ++c) {
    const std::int64_t base = s.chunk_ptr[static_cast<std::size_t>(c)];
    const std::int64_t width =
        (s.chunk_ptr[static_cast<std::size_t>(c) + 1] - base) / kSellChunk;
    const std::size_t lane0 =
        static_cast<std::size_t>(c) * kSellChunk;
    double acc[kSellChunk];
    for (int lane = 0; lane < kSellChunk; ++lane) {
      const int row = s.rows[lane0 + static_cast<std::size_t>(lane)];
      acc[lane] = (accumulate && row >= 0) ? yp[row] : 0.0;
    }
    for (std::int64_t j = 0; j < width; ++j) {
      const std::int64_t off = base + j * kSellChunk;
      for (int lane = 0; lane < kSellChunk; ++lane) {
        // The length guard keeps padding out of the accumulation chain, so
        // lane sums match the CSR row loops bit for bit (even around -0.0).
        if (j < s.lane_len[lane0 + static_cast<std::size_t>(lane)]) {
          acc[lane] +=
              s.val[static_cast<std::size_t>(off + lane)] *
              xp[s.col[static_cast<std::size_t>(off + lane)]];
        }
      }
    }
    for (int lane = 0; lane < kSellChunk; ++lane) {
      const int row = s.rows[lane0 + static_cast<std::size_t>(lane)];
      if (row >= 0) {
        yp[row] = acc[lane];
      }
    }
  }
}
#endif  // HETERO_SPMV_SELL

double CsrMatrix::at(int row, int col) const {
  const std::int64_t s = slot(row, col);
  return s < 0 ? 0.0 : values_[static_cast<std::size_t>(s)];
}

std::int64_t CsrMatrix::slot(int row, int col) const {
  HETERO_REQUIRE(row >= 0 && row < rows_, "slot: row out of range");
  const auto begin = row_ptr_[static_cast<std::size_t>(row)];
  const auto end = row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto* first = col_idx_.data() + begin;
  const auto* last = col_idx_.data() + end;
  const auto* it = std::lower_bound(first, last, col);
  if (it == last || *it != col) {
    return -1;
  }
  return begin + (it - first);
}

double CsrMatrix::symmetry_error() const {
  const int n = std::min(rows_, cols_);
  double err = 0.0;
  for (int r = 0; r < n; ++r) {
    const auto begin = row_ptr_[static_cast<std::size_t>(r)];
    const auto end = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (auto k = begin; k < end; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (c >= n || c < r) {
        continue;  // scan the upper triangle once
      }
      const double upper = values_[static_cast<std::size_t>(k)];
      const double lower = at(c, r);
      err = std::max(err, std::fabs(upper - lower));
    }
  }
  return err;
}

double CsrMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : values_) {
    sum += v * v;
  }
  return std::sqrt(sum);
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_ && r < cols_; ++r) {
    d[static_cast<std::size_t>(r)] = at(r, r);
  }
  return d;
}

}  // namespace hetero::la
