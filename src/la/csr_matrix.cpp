#include "la/csr_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace hetero::la {

CsrMatrix CsrMatrix::from_triplets(int rows, int cols,
                                   std::span<const Triplet> triplets) {
  HETERO_REQUIRE(rows >= 0 && cols >= 0, "matrix shape must be non-negative");
  std::vector<Triplet> sorted(triplets.begin(), triplets.end());
  for (const auto& t : sorted) {
    HETERO_REQUIRE(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                   "triplet index out of range");
  }
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a,
                                             const Triplet& b) {
    return a.row < b.row || (a.row == b.row && a.col < b.col);
  });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(sorted.size());
  m.values_.reserve(sorted.size());
  std::size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < sorted.size() && sorted[i].row == r) {
      const int c = sorted[i].col;
      double v = 0.0;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == c) {
        v += sorted[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
    m.row_ptr_[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(m.col_idx_.size());
  }
  return m;
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  HETERO_REQUIRE(static_cast<int>(x.size()) == cols_ &&
                     static_cast<int>(y.size()) == rows_,
                 "spmv: size mismatch");
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const auto begin = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto end =
        static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    for (std::size_t k = begin; k < end; ++k) {
      acc += values_[k] * x[static_cast<std::size_t>(col_idx_[k])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

void CsrMatrix::multiply_add(std::span<const double> x,
                             std::span<double> y) const {
  HETERO_REQUIRE(static_cast<int>(x.size()) == cols_ &&
                     static_cast<int>(y.size()) == rows_,
                 "spmv: size mismatch");
  for (int r = 0; r < rows_; ++r) {
    double acc = y[static_cast<std::size_t>(r)];
    const auto begin = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto end =
        static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    for (std::size_t k = begin; k < end; ++k) {
      acc += values_[k] * x[static_cast<std::size_t>(col_idx_[k])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

double CsrMatrix::at(int row, int col) const {
  const std::int64_t s = slot(row, col);
  return s < 0 ? 0.0 : values_[static_cast<std::size_t>(s)];
}

std::int64_t CsrMatrix::slot(int row, int col) const {
  HETERO_REQUIRE(row >= 0 && row < rows_, "slot: row out of range");
  const auto begin = row_ptr_[static_cast<std::size_t>(row)];
  const auto end = row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto* first = col_idx_.data() + begin;
  const auto* last = col_idx_.data() + end;
  const auto* it = std::lower_bound(first, last, col);
  if (it == last || *it != col) {
    return -1;
  }
  return begin + (it - first);
}

double CsrMatrix::symmetry_error() const {
  const int n = std::min(rows_, cols_);
  double err = 0.0;
  for (int r = 0; r < n; ++r) {
    const auto begin = row_ptr_[static_cast<std::size_t>(r)];
    const auto end = row_ptr_[static_cast<std::size_t>(r) + 1];
    for (auto k = begin; k < end; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (c >= n || c < r) {
        continue;  // scan the upper triangle once
      }
      const double upper = values_[static_cast<std::size_t>(k)];
      const double lower = at(c, r);
      err = std::max(err, std::fabs(upper - lower));
    }
  }
  return err;
}

double CsrMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : values_) {
    sum += v * v;
  }
  return std::sqrt(sum);
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_ && r < cols_; ++r) {
    d[static_cast<std::size_t>(r)] = at(r, r);
  }
  return d;
}

}  // namespace hetero::la
