#include "la/halo.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hetero::la {

namespace {
constexpr int kTagRequest = 7001;
constexpr int kTagImport = 7002;
constexpr int kTagExport = 7003;

struct HaloMetrics {
  obs::Counter& exchanges = obs::metrics().counter("la.halo.exchanges");
  obs::Counter& bytes = obs::metrics().counter("la.halo.bytes");
};

HaloMetrics& halo_metrics() {
  static HaloMetrics metrics;
  return metrics;
}
}  // namespace

HaloExchange::HaloExchange(simmpi::Comm& comm, const IndexMap& map)
    : map_(&map) {
  const int p = comm.size();

  // Group ghosts by owner and request those gids.
  std::vector<std::vector<GlobalId>> wanted(static_cast<std::size_t>(p));
  for (int l = map.owned_count(); l < map.local_count(); ++l) {
    wanted[static_cast<std::size_t>(map.ghost_owner(l))].push_back(map.gid(l));
  }
  const auto requests = comm.alltoallv(wanted);

  // Assemble peers: we *send* to ranks that requested our owned gids and
  // *receive* from ranks owning our ghosts.
  std::vector<Peer> peers(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    peers[static_cast<std::size_t>(r)].rank = r;
    for (GlobalId g : requests[static_cast<std::size_t>(r)]) {
      const int l = map.local(g);
      HETERO_REQUIRE(l != kInvalidLocal && map.is_owned_local(l),
                     "halo request for a gid this rank does not own");
      peers[static_cast<std::size_t>(r)].send_lids.push_back(l);
    }
    for (GlobalId g : wanted[static_cast<std::size_t>(r)]) {
      const int l = map.local(g);
      HETERO_CHECK(l != kInvalidLocal && !map.is_owned_local(l));
      peers[static_cast<std::size_t>(r)].recv_lids.push_back(l);
    }
  }
  for (auto& peer : peers) {
    if (!peer.send_lids.empty() || !peer.recv_lids.empty()) {
      peers_.push_back(std::move(peer));
    }
  }
  // One allocation for the life of the plan: the pack/unpack scratch holds
  // the largest single peer message in either direction.
  std::size_t max_msg = 0;
  for (const auto& peer : peers_) {
    max_msg = std::max(max_msg,
                       std::max(peer.send_lids.size(), peer.recv_lids.size()));
  }
  scratch_.reserve(max_msg);
  (void)kTagRequest;
}

void HaloExchange::import_ghosts(simmpi::Comm& comm,
                                 std::span<double> values) const {
  HETERO_REQUIRE(static_cast<int>(values.size()) == map_->local_count(),
                 "import_ghosts: value array size mismatch");
  obs::ScopedSpan span(comm, "halo_import", "la");
  const double moved = static_cast<double>(import_size() * sizeof(double));
  span.set_arg("bytes", moved);
  auto& metrics = halo_metrics();
  metrics.exchanges.increment();
  metrics.bytes.add(moved);
  // Buffered sends first, then receives: deadlock-free with eager sends.
  // The persistent scratch packs and unpacks every message (capacity was
  // fixed at build time, so resize never allocates).
  for (const auto& peer : peers_) {
    if (peer.send_lids.empty()) {
      continue;
    }
    scratch_.resize(peer.send_lids.size());
    for (std::size_t i = 0; i < peer.send_lids.size(); ++i) {
      scratch_[i] = values[static_cast<std::size_t>(peer.send_lids[i])];
    }
    comm.send(std::span<const double>(scratch_), peer.rank, kTagImport);
  }
  for (const auto& peer : peers_) {
    if (peer.recv_lids.empty()) {
      continue;
    }
    scratch_.resize(peer.recv_lids.size());
    const std::size_t got =
        comm.recv_into(std::span<double>(scratch_), peer.rank, kTagImport);
    HETERO_CHECK(got == peer.recv_lids.size());
    for (std::size_t i = 0; i < got; ++i) {
      values[static_cast<std::size_t>(peer.recv_lids[i])] = scratch_[i];
    }
  }
}

void HaloExchange::export_add(simmpi::Comm& comm,
                              std::span<double> values) const {
  HETERO_REQUIRE(static_cast<int>(values.size()) == map_->local_count(),
                 "export_add: value array size mismatch");
  obs::ScopedSpan span(comm, "halo_export", "la");
  std::size_t ghost_doubles = 0;
  for (const auto& peer : peers_) {
    ghost_doubles += peer.recv_lids.size();
  }
  const double moved = static_cast<double>(ghost_doubles * sizeof(double));
  span.set_arg("bytes", moved);
  auto& metrics = halo_metrics();
  metrics.exchanges.increment();
  metrics.bytes.add(moved);
  for (const auto& peer : peers_) {
    if (peer.recv_lids.empty()) {
      continue;
    }
    scratch_.resize(peer.recv_lids.size());
    for (std::size_t i = 0; i < peer.recv_lids.size(); ++i) {
      scratch_[i] = values[static_cast<std::size_t>(peer.recv_lids[i])];
      values[static_cast<std::size_t>(peer.recv_lids[i])] = 0.0;
    }
    comm.send(std::span<const double>(scratch_), peer.rank, kTagExport);
  }
  for (const auto& peer : peers_) {
    if (peer.send_lids.empty()) {
      continue;
    }
    scratch_.resize(peer.send_lids.size());
    const std::size_t got =
        comm.recv_into(std::span<double>(scratch_), peer.rank, kTagExport);
    HETERO_CHECK(got == peer.send_lids.size());
    for (std::size_t i = 0; i < got; ++i) {
      values[static_cast<std::size_t>(peer.send_lids[i])] += scratch_[i];
    }
  }
}

std::size_t HaloExchange::import_size() const {
  std::size_t n = 0;
  for (const auto& peer : peers_) {
    n += peer.recv_lids.size();
  }
  return n;
}

}  // namespace hetero::la
