#include "la/dist_vector.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace hetero::la {

DistVector::DistVector(const IndexMap& map)
    : map_(&map),
      values_(static_cast<std::size_t>(map.local_count()), 0.0) {}

void DistVector::set_all(double value) {
  std::fill(values_.begin(), values_.end(), value);
}

void DistVector::axpy(double a, const DistVector& x) {
  HETERO_REQUIRE(x.map_ == map_, "axpy: vectors use different maps");
  const std::size_t n = static_cast<std::size_t>(owned_count());
  for (std::size_t i = 0; i < n; ++i) {
    values_[i] += a * x.values_[i];
  }
}

void DistVector::axpby(double a, const DistVector& x, double b) {
  HETERO_REQUIRE(x.map_ == map_, "axpby: vectors use different maps");
  const std::size_t n = static_cast<std::size_t>(owned_count());
  for (std::size_t i = 0; i < n; ++i) {
    values_[i] = a * x.values_[i] + b * values_[i];
  }
}

void DistVector::scale(double a) {
  const std::size_t n = static_cast<std::size_t>(owned_count());
  for (std::size_t i = 0; i < n; ++i) {
    values_[i] *= a;
  }
}

void DistVector::copy_from(const DistVector& x) {
  HETERO_REQUIRE(x.map_ == map_, "copy_from: vectors use different maps");
  values_ = x.values_;
}

double DistVector::dot(simmpi::Comm& comm, const DistVector& other) const {
  HETERO_REQUIRE(other.map_ == map_, "dot: vectors use different maps");
  double local = 0.0;
  const std::size_t n = static_cast<std::size_t>(owned_count());
  for (std::size_t i = 0; i < n; ++i) {
    local += values_[i] * other.values_[i];
  }
  return comm.allreduce(local, simmpi::ReduceOp::kSum);
}

double DistVector::norm2(simmpi::Comm& comm) const {
  return std::sqrt(dot(comm, *this));
}

double DistVector::norm_inf(simmpi::Comm& comm) const {
  double local = 0.0;
  const std::size_t n = static_cast<std::size_t>(owned_count());
  for (std::size_t i = 0; i < n; ++i) {
    local = std::max(local, std::fabs(values_[i]));
  }
  return comm.allreduce(local, simmpi::ReduceOp::kMax);
}

}  // namespace hetero::la
