#include "la/dist_vector.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels.hpp"
#include "support/error.hpp"

namespace hetero::la {

DistVector::DistVector(const IndexMap& map)
    : map_(&map),
      values_(static_cast<std::size_t>(map.local_count()), 0.0) {}

void DistVector::set_all(double value) {
  std::fill(values_.begin(), values_.end(), value);
}

void DistVector::axpy(double a, const DistVector& x) {
  HETERO_REQUIRE(x.map_ == map_, "axpy: vectors use different maps");
  const std::size_t n = static_cast<std::size_t>(owned_count());
  vec_work().add(2 * static_cast<std::int64_t>(n),
                 24 * static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    values_[i] += a * x.values_[i];
  }
}

void DistVector::axpby(double a, const DistVector& x, double b) {
  HETERO_REQUIRE(x.map_ == map_, "axpby: vectors use different maps");
  const std::size_t n = static_cast<std::size_t>(owned_count());
  vec_work().add(3 * static_cast<std::int64_t>(n),
                 24 * static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    values_[i] = a * x.values_[i] + b * values_[i];
  }
}

void DistVector::scale(double a) {
  const std::size_t n = static_cast<std::size_t>(owned_count());
  vec_work().add(static_cast<std::int64_t>(n),
                 16 * static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    values_[i] *= a;
  }
}

void DistVector::copy_from(const DistVector& x) {
  HETERO_REQUIRE(x.map_ == map_, "copy_from: vectors use different maps");
  values_ = x.values_;
}

double DistVector::dot(simmpi::Comm& comm, const DistVector& other) const {
  HETERO_REQUIRE(other.map_ == map_, "dot: vectors use different maps");
  double local = 0.0;
  const std::size_t n = static_cast<std::size_t>(owned_count());
  vec_work().add(2 * static_cast<std::int64_t>(n),
                 16 * static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    local += values_[i] * other.values_[i];
  }
  return comm.allreduce(local, simmpi::ReduceOp::kSum);
}

double DistVector::norm2(simmpi::Comm& comm) const {
  return std::sqrt(dot(comm, *this));
}

double DistVector::norm_inf(simmpi::Comm& comm) const {
  double local = 0.0;
  const std::size_t n = static_cast<std::size_t>(owned_count());
  for (std::size_t i = 0; i < n; ++i) {
    local = std::max(local, std::fabs(values_[i]));
  }
  return comm.allreduce(local, simmpi::ReduceOp::kMax);
}

double DistVector::axpy_norm2(simmpi::Comm& comm, double a,
                              const DistVector& x) {
  HETERO_REQUIRE(x.map_ == map_, "axpy_norm2: vectors use different maps");
  if (kernel_mode() == KernelMode::kReference) {
    axpy(a, x);
    return norm2(comm);
  }
  const std::size_t n = static_cast<std::size_t>(owned_count());
  vec_work().add(4 * static_cast<std::int64_t>(n),
                 24 * static_cast<std::int64_t>(n));
  double local = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values_[i] + a * x.values_[i];
    values_[i] = v;
    local += v * v;
  }
  return std::sqrt(comm.allreduce(local, simmpi::ReduceOp::kSum));
}

double DistVector::copy_axpy_norm2(simmpi::Comm& comm, const DistVector& x,
                                   double a, const DistVector& y) {
  HETERO_REQUIRE(x.map_ == map_ && y.map_ == map_,
                 "copy_axpy_norm2: vectors use different maps");
  if (kernel_mode() == KernelMode::kReference) {
    copy_from(x);
    axpy(a, y);
    return norm2(comm);
  }
  const std::size_t n = static_cast<std::size_t>(owned_count());
  const std::size_t total = values_.size();
  vec_work().add(4 * static_cast<std::int64_t>(n),
                 8 * static_cast<std::int64_t>(total + 2 * n));
  double local = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x.values_[i] + a * y.values_[i];
    values_[i] = v;
    local += v * v;
  }
  for (std::size_t i = n; i < total; ++i) {
    values_[i] = x.values_[i];
  }
  return std::sqrt(comm.allreduce(local, simmpi::ReduceOp::kSum));
}

std::pair<double, double> DistVector::dot_pair(simmpi::Comm& comm,
                                               const DistVector& a,
                                               const DistVector& b) const {
  HETERO_REQUIRE(a.map_ == map_ && b.map_ == map_,
                 "dot_pair: vectors use different maps");
  if (kernel_mode() == KernelMode::kReference) {
    return {dot(comm, a), dot(comm, b)};
  }
  const std::size_t n = static_cast<std::size_t>(owned_count());
  vec_work().add(4 * static_cast<std::int64_t>(n),
                 24 * static_cast<std::int64_t>(n));
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    da += values_[i] * a.values_[i];
    db += values_[i] * b.values_[i];
  }
  const double local[2] = {da, db};
  const auto global =
      comm.allreduce(std::span<const double>(local), simmpi::ReduceOp::kSum);
  return {global[0], global[1]};
}

void DistVector::update_search_direction(const DistVector& r,
                                         const DistVector& v, double beta,
                                         double omega) {
  HETERO_REQUIRE(r.map_ == map_ && v.map_ == map_,
                 "update_search_direction: vectors use different maps");
  if (kernel_mode() == KernelMode::kReference) {
    axpy(-omega, v);
    axpby(1.0, r, beta);
    return;
  }
  const std::size_t n = static_cast<std::size_t>(owned_count());
  vec_work().add(5 * static_cast<std::int64_t>(n),
                 32 * static_cast<std::int64_t>(n));
  const double nomega = -omega;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = values_[i] + nomega * v.values_[i];
    values_[i] = 1.0 * r.values_[i] + beta * t;
  }
}

void DistVector::add_scaled(std::span<const double> coeffs,
                            std::span<const DistVector* const> vs) {
  HETERO_REQUIRE(coeffs.size() == vs.size(),
                 "add_scaled: coefficient/vector count mismatch");
  for (const DistVector* v : vs) {
    HETERO_REQUIRE(v != nullptr && v->map_ == map_,
                   "add_scaled: vectors use different maps");
  }
  if (kernel_mode() == KernelMode::kReference) {
    for (std::size_t j = 0; j < vs.size(); ++j) {
      axpy(coeffs[j], *vs[j]);
    }
    return;
  }
  const std::size_t n = static_cast<std::size_t>(owned_count());
  const auto k = static_cast<std::int64_t>(vs.size());
  vec_work().add(2 * k * static_cast<std::int64_t>(n),
                 8 * (k + 2) * static_cast<std::int64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    double acc = values_[i];
    for (std::size_t j = 0; j < vs.size(); ++j) {
      acc += coeffs[j] * vs[j]->values_[i];
    }
    values_[i] = acc;
  }
}

double cg_update_norm2(simmpi::Comm& comm, DistVector& x, double alpha,
                       const DistVector& p, DistVector& r,
                       const DistVector& ap) {
  if (kernel_mode() == KernelMode::kReference) {
    x.axpy(alpha, p);
    r.axpy(-alpha, ap);
    return r.norm2(comm);
  }
  HETERO_REQUIRE(&x.map() == &r.map() && &p.map() == &r.map() &&
                     &ap.map() == &r.map(),
                 "cg_update_norm2: vectors use different maps");
  const std::size_t n = static_cast<std::size_t>(r.owned_count());
  vec_work().add(6 * static_cast<std::int64_t>(n),
                 56 * static_cast<std::int64_t>(n));
  const double nalpha = -alpha;
  auto xs = x.values();
  auto rs = r.values();
  auto ps = p.values();
  auto aps = ap.values();
  double local = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] += alpha * ps[i];
    const double rv = rs[i] + nalpha * aps[i];
    rs[i] = rv;
    local += rv * rv;
  }
  return std::sqrt(comm.allreduce(local, simmpi::ReduceOp::kSum));
}

}  // namespace hetero::la
