#pragma once

/// \file kernels.hpp
/// Hot-path kernel dispatch and FLOP/byte accounting.
///
/// Every optimized numeric kernel in the direct-mode engine (SpMV, fused
/// vector updates, batched assembly scatter) dispatches on a process-wide
/// KernelMode:
///
///   * kReference — the original straight-line implementations, kept as the
///     executable specification of the numerics;
///   * kFast      — blocked / fused / allocation-free variants that produce
///     bit-identical values (every per-output accumulation chain evaluates
///     in the same order; no reassociation, no FMA contraction relied upon).
///
/// The default is kFast; set HETERO_KERNELS=reference in the environment (or
/// call set_kernel_mode) to pin the reference path. Having both in one
/// binary is what lets the differential tests and bench_kernels prove the
/// overhaul changes time but not math.
///
/// FLOP/byte counters feed the obs metrics registry (`la.kernel.*`,
/// `fem.kernel.*`) so benches can report arithmetic intensity next to wall
/// time; see docs/kernels.md for how the counts are modeled.

#include <cstdint>

#include "obs/metrics.hpp"

namespace hetero::la {

enum class KernelMode { kReference, kFast };

/// Current process-wide kernel mode. First use reads HETERO_KERNELS
/// ("reference" selects kReference; anything else, or unset, kFast).
KernelMode kernel_mode();

/// Overrides the mode for the whole process (tests and benches only; not a
/// per-rank setting). Safe to call between runs, not mid-solve.
void set_kernel_mode(KernelMode mode);

/// Modeled work of one kernel family, accumulated into obs counters. The
/// handles are resolved once (registry lookup takes a mutex) — callers add
/// per kernel invocation, never per element.
class KernelWork {
 public:
  /// `name` is the counter stem ("la.kernel.spmv", "fem.kernel.assembly",
  /// ...); counters are named <name>.flops / <name>.bytes.
  explicit KernelWork(const char* name);

  void add(std::int64_t flops, std::int64_t bytes) {
    flops_.add(static_cast<double>(flops));
    bytes_.add(static_cast<double>(bytes));
  }
  double flops() const { return flops_.value(); }
  double bytes() const { return bytes_.value(); }

 private:
  obs::Counter& flops_;
  obs::Counter& bytes_;
};

/// Shared counter instances for the la-level kernel families.
KernelWork& spmv_work();
KernelWork& vec_work();

}  // namespace hetero::la
