#pragma once

/// \file dist_matrix.hpp
/// Row-distributed sparse matrix: each rank stores the CSR block of its
/// owned rows over all local columns (owned + ghost). A matvec imports
/// ghost x-values, then runs the local spmv — exactly the communication
/// pattern whose cost the paper's weak-scaling figures track.

#include "la/csr_matrix.hpp"
#include "la/dist_vector.hpp"
#include "la/halo.hpp"
#include "la/index_map.hpp"

namespace hetero::la {

class DistCsrMatrix {
 public:
  /// `map` and `halo` must outlive the matrix. `local` must have
  /// map.owned_count() rows and map.local_count() columns.
  DistCsrMatrix(const IndexMap& map, const HaloExchange& halo,
                CsrMatrix local);

  const IndexMap& map() const { return *map_; }
  const HaloExchange& halo() const { return *halo_; }
  const CsrMatrix& local() const { return local_; }
  CsrMatrix& local_mut() { return local_; }

  std::int64_t global_nonzeros(simmpi::Comm& comm) const;

  /// y = A x; refreshes x's ghosts first. Collective.
  void multiply(simmpi::Comm& comm, DistVector& x, DistVector& y) const;

 private:
  const IndexMap* map_;
  const HaloExchange* halo_;
  CsrMatrix local_;
};

}  // namespace hetero::la
