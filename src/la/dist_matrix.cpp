#include "la/dist_matrix.hpp"

#include "support/error.hpp"

namespace hetero::la {

DistCsrMatrix::DistCsrMatrix(const IndexMap& map, const HaloExchange& halo,
                             CsrMatrix local)
    : map_(&map), halo_(&halo), local_(std::move(local)) {
  HETERO_REQUIRE(local_.rows() == map.owned_count() &&
                     local_.cols() == map.local_count(),
                 "local block shape must be owned x local");
}

std::int64_t DistCsrMatrix::global_nonzeros(simmpi::Comm& comm) const {
  return comm.allreduce(local_.nonzeros(), simmpi::ReduceOp::kSum);
}

void DistCsrMatrix::multiply(simmpi::Comm& comm, DistVector& x,
                             DistVector& y) const {
  x.update_ghosts(comm, *halo_);
  local_.multiply(x.values(), y.owned());
}

}  // namespace hetero::la
