#include "la/index_map.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace hetero::la {

namespace {
int directory_rank(GlobalId gid, int ranks) {
  // Cheap integer hash; gids are structured so plain modulo would cluster.
  std::uint64_t x = static_cast<std::uint64_t>(gid);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(ranks));
}
}  // namespace

GidDirectory GidDirectory::build(simmpi::Comm& comm,
                                 std::span<const GlobalId> touched) {
  const int p = comm.size();
  GidDirectory dir;
  dir.ranks_ = p;

  // Route each touched gid to its directory rank.
  std::vector<std::vector<GlobalId>> outgoing(static_cast<std::size_t>(p));
  for (GlobalId g : touched) {
    outgoing[static_cast<std::size_t>(directory_rank(g, p))].push_back(g);
  }
  const auto incoming = comm.alltoallv(outgoing);

  // Min rank that registered a gid becomes its owner.
  for (int src = 0; src < p; ++src) {
    for (GlobalId g : incoming[static_cast<std::size_t>(src)]) {
      auto [it, inserted] = dir.owner_of_.try_emplace(g, src);
      if (!inserted && src < it->second) {
        it->second = src;
      }
    }
  }
  return dir;
}

std::vector<int> GidDirectory::lookup(simmpi::Comm& comm,
                                      std::span<const GlobalId> gids) const {
  const int p = comm.size();
  // Queries routed to directory ranks; answers return in the same per-rank
  // order, so positions can be reconciled without sending indices.
  std::vector<std::vector<GlobalId>> queries(static_cast<std::size_t>(p));
  std::vector<std::vector<std::size_t>> positions(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < gids.size(); ++i) {
    const int d = directory_rank(gids[i], p);
    queries[static_cast<std::size_t>(d)].push_back(gids[i]);
    positions[static_cast<std::size_t>(d)].push_back(i);
  }
  const auto received = comm.alltoallv(queries);

  std::vector<std::vector<std::int64_t>> answers(static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    auto& out = answers[static_cast<std::size_t>(src)];
    out.reserve(received[static_cast<std::size_t>(src)].size());
    for (GlobalId g : received[static_cast<std::size_t>(src)]) {
      const auto it = owner_of_.find(g);
      HETERO_REQUIRE(it != owner_of_.end(),
                     "GidDirectory::lookup: gid was never registered");
      out.push_back(it->second);
    }
  }
  const auto replies = comm.alltoallv(answers);

  std::vector<int> owners(gids.size(), -1);
  for (int d = 0; d < p; ++d) {
    const auto& reply = replies[static_cast<std::size_t>(d)];
    const auto& pos = positions[static_cast<std::size_t>(d)];
    HETERO_CHECK(reply.size() == pos.size());
    for (std::size_t i = 0; i < reply.size(); ++i) {
      owners[pos[i]] = static_cast<int>(reply[i]);
    }
  }
  return owners;
}

IndexMap IndexMap::build(simmpi::Comm& comm, const GidDirectory& directory,
                         std::span<const GlobalId> touched,
                         std::span<const GlobalId> extra_ghosts) {
  // Deduplicate the union of touched and extra ghosts.
  std::vector<GlobalId> all(touched.begin(), touched.end());
  all.insert(all.end(), extra_ghosts.begin(), extra_ghosts.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  const std::vector<int> owners = directory.lookup(comm, all);

  IndexMap map;
  // Owned first (already gid-sorted), then ghosts sorted by (owner, gid).
  std::vector<std::pair<int, GlobalId>> ghosts;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (owners[i] == comm.rank()) {
      map.gids_.push_back(all[i]);
    } else {
      ghosts.emplace_back(owners[i], all[i]);
    }
  }
  map.owned_count_ = static_cast<int>(map.gids_.size());
  std::sort(ghosts.begin(), ghosts.end());
  for (const auto& [owner, gid] : ghosts) {
    map.gids_.push_back(gid);
    map.ghost_owner_.push_back(owner);
  }
  map.local_of_.reserve(map.gids_.size());
  for (std::size_t l = 0; l < map.gids_.size(); ++l) {
    map.local_of_.emplace(map.gids_[l], static_cast<int>(l));
  }
  map.global_count_ = comm.allreduce(
      static_cast<std::int64_t>(map.owned_count_), simmpi::ReduceOp::kSum);
  return map;
}

int IndexMap::local(GlobalId gid) const {
  const auto it = local_of_.find(gid);
  return it == local_of_.end() ? kInvalidLocal : it->second;
}

}  // namespace hetero::la
