#pragma once

/// \file index_map.hpp
/// Distribution of global unknown ids over ranks — heterolab's equivalent of
/// a Trilinos Epetra_Map.
///
/// Global ids (gids) are arbitrary unique 64-bit integers (they need not be
/// contiguous; the FEM layer derives them from mesh entities). Ownership is
/// decided by a distributed directory: every gid is hashed to a directory
/// rank; the lowest rank that registered the gid becomes its owner. The
/// directory persists so ids discovered later (off-process matrix columns)
/// resolve to the same owner.
///
/// Local index convention: owned ids first (sorted by gid), then ghost ids
/// (sorted by owner rank, then gid).

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "simmpi/comm.hpp"

namespace hetero::la {

using GlobalId = std::int64_t;
inline constexpr int kInvalidLocal = -1;

/// Distributed gid -> owner directory. All methods are collective.
class GidDirectory {
 public:
  /// Registers `touched` for this rank and assigns owners (min rank wins).
  static GidDirectory build(simmpi::Comm& comm,
                            std::span<const GlobalId> touched);

  /// Owner rank of each queried gid; collective. Unknown gids are an error.
  std::vector<int> lookup(simmpi::Comm& comm,
                          std::span<const GlobalId> gids) const;

 private:
  /// Entries this rank is the directory for.
  std::unordered_map<GlobalId, int> owner_of_;
  int ranks_ = 1;
};

/// Immutable distribution of unknowns over ranks.
class IndexMap {
 public:
  /// Builds a map whose owned set is {g in touched : owner(g) == my rank}
  /// and whose ghost set is the rest of `touched` plus `extra_ghosts`.
  /// Collective. `directory` must have been built over the union of all
  /// ranks' touched sets.
  static IndexMap build(simmpi::Comm& comm, const GidDirectory& directory,
                        std::span<const GlobalId> touched,
                        std::span<const GlobalId> extra_ghosts = {});

  int owned_count() const { return owned_count_; }
  int ghost_count() const {
    return static_cast<int>(gids_.size()) - owned_count_;
  }
  int local_count() const { return static_cast<int>(gids_.size()); }
  std::int64_t global_count() const { return global_count_; }

  /// gid of local index l (owned then ghost).
  GlobalId gid(int l) const { return gids_[static_cast<std::size_t>(l)]; }
  const std::vector<GlobalId>& gids() const { return gids_; }

  /// Local index of `gid`, or kInvalidLocal when not on this rank.
  int local(GlobalId gid) const;

  bool is_owned_local(int l) const { return l < owned_count_; }

  /// Owner rank of ghost local index l (l >= owned_count()).
  int ghost_owner(int l) const {
    return ghost_owner_[static_cast<std::size_t>(l - owned_count_)];
  }

 private:
  std::vector<GlobalId> gids_;
  std::unordered_map<GlobalId, int> local_of_;
  std::vector<int> ghost_owner_;
  int owned_count_ = 0;
  std::int64_t global_count_ = 0;
};

}  // namespace hetero::la
