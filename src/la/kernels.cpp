#include "la/kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <string_view>

namespace hetero::la {

namespace {

KernelMode initial_mode() {
  const char* env = std::getenv("HETERO_KERNELS");
  if (env != nullptr && std::string_view(env) == "reference") {
    return KernelMode::kReference;
  }
  return KernelMode::kFast;
}

std::atomic<KernelMode>& mode_slot() {
  static std::atomic<KernelMode> mode{initial_mode()};
  return mode;
}

}  // namespace

KernelMode kernel_mode() {
  return mode_slot().load(std::memory_order_relaxed);
}

void set_kernel_mode(KernelMode mode) {
  mode_slot().store(mode, std::memory_order_relaxed);
}

KernelWork::KernelWork(const char* name)
    : flops_(obs::metrics().counter(std::string(name) + ".flops")),
      bytes_(obs::metrics().counter(std::string(name) + ".bytes")) {}

KernelWork& spmv_work() {
  static KernelWork work("la.kernel.spmv");
  return work;
}

KernelWork& vec_work() {
  static KernelWork work("la.kernel.vec");
  return work;
}

}  // namespace hetero::la
