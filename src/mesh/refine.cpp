#include "mesh/refine.hpp"

#include <algorithm>
#include <unordered_map>

#include "mesh/edges.hpp"
#include "support/error.hpp"

namespace hetero::mesh {

TetMesh refine_uniform(const TetMesh& mesh) {
  const EdgeSet edges = build_edges(mesh);
  const int nv = static_cast<int>(mesh.vertex_count());

  // Vertices: originals first, then one midpoint per unique edge.
  std::vector<Vec3> vertices(mesh.vertices());
  vertices.reserve(vertices.size() + edges.edges.size());
  for (const auto& e : edges.edges) {
    vertices.push_back(midpoint(mesh.vertex(e[0]), mesh.vertex(e[1])));
  }
  auto mid = [&](std::size_t t, int local_edge) {
    return nv + edges.tet_edges[t][static_cast<std::size_t>(local_edge)];
  };

  // Local edge order (kTetEdgeVertices): 0:(0,1) 1:(0,2) 2:(0,3) 3:(1,2)
  // 4:(1,3) 5:(2,3).
  std::vector<std::array<int, 4>> tets;
  tets.reserve(mesh.tet_count() * 8);
  auto emit = [&](int a, int b, int c, int d) {
    std::array<int, 4> tet{a, b, c, d};
    if (tet_signed_volume(vertices[static_cast<std::size_t>(a)],
                          vertices[static_cast<std::size_t>(b)],
                          vertices[static_cast<std::size_t>(c)],
                          vertices[static_cast<std::size_t>(d)]) < 0.0) {
      std::swap(tet[2], tet[3]);
    }
    tets.push_back(tet);
  };
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    const auto& v = mesh.tet(t);
    const int e01 = mid(t, 0);
    const int e02 = mid(t, 1);
    const int e03 = mid(t, 2);
    const int e12 = mid(t, 3);
    const int e13 = mid(t, 4);
    const int e23 = mid(t, 5);
    // Four corner tets.
    emit(v[0], e01, e02, e03);
    emit(e01, v[1], e12, e13);
    emit(e02, e12, v[2], e23);
    emit(e03, e13, e23, v[3]);
    // Inner octahedron split along the (e02, e13) diagonal (Bey's rule).
    emit(e01, e02, e03, e13);
    emit(e01, e02, e12, e13);
    emit(e02, e03, e13, e23);
    emit(e02, e12, e13, e23);
  }

  TetMesh refined(std::move(vertices), std::move(tets));

  // Boundary faces: split each marked triangle into four using the same
  // midpoints; look them up via the global edge keys.
  std::unordered_map<std::int64_t, int> edge_mid;
  edge_mid.reserve(edges.edges.size());
  for (std::size_t e = 0; e < edges.edges.size(); ++e) {
    const auto key = static_cast<std::int64_t>(edges.edges[e][0]) *
                         static_cast<std::int64_t>(nv) +
                     edges.edges[e][1];
    edge_mid.emplace(key, nv + static_cast<int>(e));
  }
  auto midpoint_of = [&](int a, int b) {
    const auto key = static_cast<std::int64_t>(std::min(a, b)) *
                         static_cast<std::int64_t>(nv) +
                     std::max(a, b);
    const auto it = edge_mid.find(key);
    HETERO_REQUIRE(it != edge_mid.end(),
                   "boundary face edge missing from the mesh edge set");
    return it->second;
  };
  std::vector<BoundaryFace> faces;
  faces.reserve(mesh.boundary_faces().size() * 4);
  for (const auto& f : mesh.boundary_faces()) {
    const int a = f.vertices[0];
    const int b = f.vertices[1];
    const int c = f.vertices[2];
    const int ab = midpoint_of(a, b);
    const int bc = midpoint_of(b, c);
    const int ca = midpoint_of(c, a);
    faces.push_back({{a, ab, ca}, f.marker});
    faces.push_back({{ab, b, bc}, f.marker});
    faces.push_back({{ca, bc, c}, f.marker});
    faces.push_back({{ab, bc, ca}, f.marker});
  }
  refined.set_boundary_faces(std::move(faces));
  return refined;
}

double tet_edge_ratio(const TetMesh& mesh, std::size_t t) {
  const auto& tet = mesh.tet(t);
  double shortest = 0.0;
  double longest = 0.0;
  bool first = true;
  for (const auto& e : kTetEdgeVertices) {
    const double len =
        (mesh.vertex(tet[static_cast<std::size_t>(e[0])]) -
         mesh.vertex(tet[static_cast<std::size_t>(e[1])]))
            .norm();
    if (first) {
      shortest = longest = len;
      first = false;
    } else {
      shortest = std::min(shortest, len);
      longest = std::max(longest, len);
    }
  }
  HETERO_REQUIRE(shortest > 0.0, "degenerate tet edge");
  return longest / shortest;
}

double worst_edge_ratio(const TetMesh& mesh) {
  double worst = 1.0;
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    worst = std::max(worst, tet_edge_ratio(mesh, t));
  }
  return worst;
}

}  // namespace hetero::mesh
