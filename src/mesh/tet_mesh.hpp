#pragma once

/// \file tet_mesh.hpp
/// Linear tetrahedral mesh with optional global vertex numbering.
///
/// A `TetMesh` may be a complete domain (serial runs, partitioner input) or
/// one rank's submesh of a distributed domain. In the latter case
/// `vertex_gid()` carries the structured global vertex ids that the FEM dof
/// maps use to identify shared unknowns across ranks.

#include <array>
#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"

namespace hetero::mesh {

using GlobalId = std::int64_t;

/// Boundary face: three local vertex indices plus an integer marker
/// (1..6 for the box faces -x,+x,-y,+y,-z,+z).
struct BoundaryFace {
  std::array<int, 3> vertices{};
  int marker = 0;
};

/// Mesh quality / size metrics.
struct MeshMetrics {
  std::size_t vertex_count = 0;
  std::size_t tet_count = 0;
  double total_volume = 0.0;
  double min_tet_volume = 0.0;
  double max_tet_volume = 0.0;
};

class TetMesh {
 public:
  TetMesh() = default;
  TetMesh(std::vector<Vec3> vertices, std::vector<std::array<int, 4>> tets);

  std::size_t vertex_count() const { return vertices_.size(); }
  std::size_t tet_count() const { return tets_.size(); }

  const Vec3& vertex(int v) const { return vertices_[static_cast<std::size_t>(v)]; }
  const std::array<int, 4>& tet(std::size_t t) const { return tets_[t]; }
  const std::vector<Vec3>& vertices() const { return vertices_; }
  const std::vector<std::array<int, 4>>& tets() const { return tets_; }

  /// Global vertex ids; identity (0..n-1) unless set by a submesh builder.
  const std::vector<GlobalId>& vertex_gids() const { return vertex_gids_; }
  GlobalId vertex_gid(int v) const {
    return vertex_gids_[static_cast<std::size_t>(v)];
  }
  void set_vertex_gids(std::vector<GlobalId> gids);

  const std::vector<BoundaryFace>& boundary_faces() const {
    return boundary_faces_;
  }
  void set_boundary_faces(std::vector<BoundaryFace> faces) {
    boundary_faces_ = std::move(faces);
  }

  /// Signed volume of tet `t` (positive for correctly oriented meshes).
  double tet_volume(std::size_t t) const;

  /// Throws hetero::Error if any vertex index is out of range, any tet is
  /// degenerate or inverted, or gid array size mismatches.
  void validate() const;

  MeshMetrics metrics() const;

 private:
  std::vector<Vec3> vertices_;
  std::vector<std::array<int, 4>> tets_;
  std::vector<GlobalId> vertex_gids_;
  std::vector<BoundaryFace> boundary_faces_;
};

}  // namespace hetero::mesh
