#pragma once

/// \file geometry.hpp
/// Small 3-D geometry value types used across mesh / fem.

#include <array>
#include <cmath>

namespace hetero::mesh {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  double norm2() const { return dot(*this); }
};

inline Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Signed volume of the tetrahedron (a, b, c, d); positive when (b-a, c-a,
/// d-a) form a right-handed frame.
inline double tet_signed_volume(const Vec3& a, const Vec3& b, const Vec3& c,
                                const Vec3& d) {
  return (b - a).cross(c - a).dot(d - a) / 6.0;
}

/// Midpoint of a segment.
inline Vec3 midpoint(const Vec3& a, const Vec3& b) {
  return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0, (a.z + b.z) / 2.0};
}

}  // namespace hetero::mesh
