#include "mesh/vtk_writer.hpp"

#include <cstdio>
#include <fstream>

#include "support/error.hpp"

namespace hetero::mesh {

std::string VtkSeriesWriter::step_path(int index) const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "_%04d.vtk", index);
  return basename_ + buf;
}

void VtkSeriesWriter::add_step(double time, const VtkWriter& frame) {
  frame.write(step_path(static_cast<int>(times_.size())));
  times_.push_back(time);
}

void VtkSeriesWriter::finalize() const {
  std::ofstream os(basename_ + ".pvd");
  HETERO_REQUIRE(os.good(), "cannot open PVD collection: " + basename_);
  os << "<?xml version=\"1.0\"?>\n"
     << "<VTKFile type=\"Collection\" version=\"0.1\">\n"
     << "  <Collection>\n";
  for (std::size_t i = 0; i < times_.size(); ++i) {
    // Relative file reference: ParaView resolves next to the .pvd.
    std::string file = step_path(static_cast<int>(i));
    const auto slash = file.find_last_of('/');
    if (slash != std::string::npos) {
      file = file.substr(slash + 1);
    }
    os << "    <DataSet timestep=\"" << times_[i] << "\" file=\"" << file
       << "\"/>\n";
  }
  os << "  </Collection>\n</VTKFile>\n";
  HETERO_REQUIRE(os.good(), "I/O error while writing the PVD collection");
}

void VtkWriter::add_scalar_field(const std::string& name,
                                 std::vector<double> values) {
  HETERO_REQUIRE(values.size() == mesh_->vertex_count(),
                 "scalar field size must equal vertex count");
  scalars_[name] = std::move(values);
}

void VtkWriter::add_vector_field(const std::string& name,
                                 std::vector<double> xyz) {
  HETERO_REQUIRE(xyz.size() == 3 * mesh_->vertex_count(),
                 "vector field size must equal 3 x vertex count");
  vectors_[name] = std::move(xyz);
}

void VtkWriter::write(const std::string& path) const {
  std::ofstream os(path);
  HETERO_REQUIRE(os.good(), "cannot open VTK output file: " + path);
  os << "# vtk DataFile Version 3.0\n"
     << "heterolab export\nASCII\nDATASET UNSTRUCTURED_GRID\n";
  os << "POINTS " << mesh_->vertex_count() << " double\n";
  for (const auto& v : mesh_->vertices()) {
    os << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  os << "CELLS " << mesh_->tet_count() << ' ' << mesh_->tet_count() * 5
     << '\n';
  for (const auto& tet : mesh_->tets()) {
    os << "4 " << tet[0] << ' ' << tet[1] << ' ' << tet[2] << ' ' << tet[3]
       << '\n';
  }
  os << "CELL_TYPES " << mesh_->tet_count() << '\n';
  for (std::size_t t = 0; t < mesh_->tet_count(); ++t) {
    os << "10\n";  // VTK_TETRA
  }
  if (!scalars_.empty() || !vectors_.empty()) {
    os << "POINT_DATA " << mesh_->vertex_count() << '\n';
    for (const auto& [name, values] : scalars_) {
      os << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
      for (double v : values) {
        os << v << '\n';
      }
    }
    for (const auto& [name, values] : vectors_) {
      os << "VECTORS " << name << " double\n";
      for (std::size_t i = 0; i < values.size(); i += 3) {
        os << values[i] << ' ' << values[i + 1] << ' ' << values[i + 2]
           << '\n';
      }
    }
  }
  HETERO_REQUIRE(os.good(), "I/O error while writing " + path);
}

}  // namespace hetero::mesh
