#include "mesh/box_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/error.hpp"

namespace hetero::mesh {

GlobalId BoxMeshSpec::vertex_gid(int i, int j, int k) const {
  return static_cast<GlobalId>(i) +
         static_cast<GlobalId>(nx + 1) *
             (static_cast<GlobalId>(j) +
              static_cast<GlobalId>(ny + 1) * static_cast<GlobalId>(k));
}

std::int64_t BoxMeshSpec::vertex_count() const {
  return static_cast<std::int64_t>(nx + 1) * (ny + 1) * (nz + 1);
}

std::int64_t BoxMeshSpec::cell_count() const {
  return static_cast<std::int64_t>(nx) * ny * nz;
}

Vec3 BoxMeshSpec::vertex_coord(int i, int j, int k) const {
  const double fx = static_cast<double>(i) / nx;
  const double fy = static_cast<double>(j) / ny;
  const double fz = static_cast<double>(k) / nz;
  return {lo.x + fx * (hi.x - lo.x), lo.y + fy * (hi.y - lo.y),
          lo.z + fz * (hi.z - lo.z)};
}

namespace {

/// The six Kuhn tetrahedra of the unit cube, as paths 000 -> 111 adding one
/// axis at a time; vertex offsets are (di, dj, dk). Orientation is fixed up
/// at emission time by swapping two vertices when the signed volume is
/// negative.
constexpr std::array<std::array<int, 3>, 6> kAxisOrders = {{
    {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
}};

std::array<std::array<int, 3>, 4> kuhn_offsets(int path) {
  std::array<std::array<int, 3>, 4> offs{};
  offs[0] = {0, 0, 0};
  std::array<int, 3> acc{0, 0, 0};
  for (int step = 0; step < 3; ++step) {
    acc[static_cast<std::size_t>(kAxisOrders[static_cast<std::size_t>(path)]
                                           [static_cast<std::size_t>(step)])] = 1;
    offs[static_cast<std::size_t>(step + 1)] = acc;
  }
  return offs;
}

/// Emits the six tets of cell (ci, cj, ck) through `vertex_index`, which maps
/// structured (i, j, k) to a local vertex index.
template <class VertexIndexFn>
void emit_cell_tets(int ci, int cj, int ck, const VertexIndexFn& vertex_index,
                    const std::vector<Vec3>& coords,
                    std::vector<std::array<int, 4>>& tets) {
  for (int path = 0; path < 6; ++path) {
    const auto offs = kuhn_offsets(path);
    std::array<int, 4> tet{};
    for (int v = 0; v < 4; ++v) {
      const auto& o = offs[static_cast<std::size_t>(v)];
      tet[static_cast<std::size_t>(v)] =
          vertex_index(ci + o[0], cj + o[1], ck + o[2]);
    }
    const double vol = tet_signed_volume(
        coords[static_cast<std::size_t>(tet[0])],
        coords[static_cast<std::size_t>(tet[1])],
        coords[static_cast<std::size_t>(tet[2])],
        coords[static_cast<std::size_t>(tet[3])]);
    if (vol < 0.0) {
      std::swap(tet[2], tet[3]);
    }
    tets.push_back(tet);
  }
}

/// Collects the boundary faces of the tets lying on the domain boundary.
/// Faces are detected per cell: cells at the grid boundary contribute the
/// triangles of their exposed cube faces. Works for both the full mesh and
/// submeshes (then only the *global* domain boundary is marked).
template <class VertexIndexFn>
void emit_boundary_faces(const BoxMeshSpec& spec, const CellBox& box,
                         const VertexIndexFn& vertex_index,
                         std::vector<BoundaryFace>& faces) {
  // Each exposed cube face is split along its Kuhn diagonal (low corner to
  // high corner) into two triangles. Marker values: 1 -x, 2 +x, 3 -y, 4 +y,
  // 5 -z, 6 +z.
  struct FaceSpec {
    int marker;
    // Corner offsets of the quad (low-to-high winding).
    std::array<std::array<int, 3>, 4> quad;
  };
  auto cell_faces = [&](int ci, int cj, int ck,
                        std::vector<FaceSpec>& out) {
    out.clear();
    if (ci == 0) {
      out.push_back({1, {{{0, 0, 0}, {0, 1, 0}, {0, 1, 1}, {0, 0, 1}}}});
    }
    if (ci == spec.nx - 1) {
      out.push_back({2, {{{1, 0, 0}, {1, 1, 0}, {1, 1, 1}, {1, 0, 1}}}});
    }
    if (cj == 0) {
      out.push_back({3, {{{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {0, 0, 1}}}});
    }
    if (cj == spec.ny - 1) {
      out.push_back({4, {{{0, 1, 0}, {1, 1, 0}, {1, 1, 1}, {0, 1, 1}}}});
    }
    if (ck == 0) {
      out.push_back({5, {{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}}}});
    }
    if (ck == spec.nz - 1) {
      out.push_back({6, {{{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}}}});
    }
  };
  std::vector<FaceSpec> specs;
  for (int ck = box.k0; ck < box.k1; ++ck) {
    for (int cj = box.j0; cj < box.j1; ++cj) {
      for (int ci = box.i0; ci < box.i1; ++ci) {
        cell_faces(ci, cj, ck, specs);
        for (const auto& fs : specs) {
          // Quad corners in local vertex indices; split along the diagonal
          // between the quad's min (corner 0) and max (corner 2) corners,
          // matching the Kuhn triangulation's face diagonals.
          std::array<int, 4> q{};
          for (int c = 0; c < 4; ++c) {
            const auto& o = fs.quad[static_cast<std::size_t>(c)];
            q[static_cast<std::size_t>(c)] =
                vertex_index(ci + o[0], cj + o[1], ck + o[2]);
          }
          faces.push_back({{q[0], q[1], q[2]}, fs.marker});
          faces.push_back({{q[0], q[2], q[3]}, fs.marker});
        }
      }
    }
  }
}

}  // namespace

BlockDecomposition::BlockDecomposition(const BoxMeshSpec& spec, int ranks)
    : spec_(spec) {
  HETERO_REQUIRE(ranks >= 1, "block decomposition requires >= 1 rank");
  // Most cubic factorization px >= py >= pz by brute force; the grid does
  // not need to divide evenly (split_sizes balances remainders).
  int best_px = ranks, best_py = 1, best_pz = 1;
  double best_score = 1e300;
  for (int px = 1; px <= ranks; ++px) {
    if (ranks % px != 0) {
      continue;
    }
    const int rest = ranks / px;
    for (int py = 1; py <= rest; ++py) {
      if (rest % py != 0) {
        continue;
      }
      const int pz = rest / py;
      if (px > spec.nx || py > spec.ny || pz > spec.nz) {
        continue;
      }
      // Surface-to-volume heuristic for a unit cube of work.
      const double score = static_cast<double>(px) / spec.nx +
                           static_cast<double>(py) / spec.ny +
                           static_cast<double>(pz) / spec.nz;
      if (score < best_score) {
        best_score = score;
        best_px = px;
        best_py = py;
        best_pz = pz;
      }
    }
  }
  HETERO_REQUIRE(best_px <= spec.nx && best_py <= spec.ny && best_pz <= spec.nz,
                 "more ranks than cells along an axis");
  px_ = best_px;
  py_ = best_py;
  pz_ = best_pz;
  xs_ = split_sizes(spec.nx, px_);
  ys_ = split_sizes(spec.ny, py_);
  zs_ = split_sizes(spec.nz, pz_);
}

std::vector<int> BlockDecomposition::split_sizes(int n, int parts) {
  // Boundaries 0 = b[0] <= b[1] <= ... <= b[parts] = n, sizes within one.
  std::vector<int> bounds(static_cast<std::size_t>(parts) + 1, 0);
  for (int p = 0; p <= parts; ++p) {
    bounds[static_cast<std::size_t>(p)] =
        static_cast<int>((static_cast<std::int64_t>(n) * p) / parts);
  }
  return bounds;
}

std::array<int, 3> BlockDecomposition::block_coords(int rank) const {
  HETERO_REQUIRE(rank >= 0 && rank < ranks(), "rank out of range");
  return {rank % px_, (rank / px_) % py_, rank / (px_ * py_)};
}

CellBox BlockDecomposition::box(int rank) const {
  const auto [bx, by, bz] = block_coords(rank);
  return CellBox{
      xs_[static_cast<std::size_t>(bx)], xs_[static_cast<std::size_t>(bx) + 1],
      ys_[static_cast<std::size_t>(by)], ys_[static_cast<std::size_t>(by) + 1],
      zs_[static_cast<std::size_t>(bz)], zs_[static_cast<std::size_t>(bz) + 1]};
}

int BlockDecomposition::rank_of_cell(int i, int j, int k) const {
  HETERO_REQUIRE(i >= 0 && i < spec_.nx && j >= 0 && j < spec_.ny && k >= 0 &&
                     k < spec_.nz,
                 "cell index out of range");
  auto find_block = [](const std::vector<int>& bounds, int c) {
    // bounds is sorted; block b covers [bounds[b], bounds[b+1]).
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), c);
    return static_cast<int>(it - bounds.begin()) - 1;
  };
  const int bx = find_block(xs_, i);
  const int by = find_block(ys_, j);
  const int bz = find_block(zs_, k);
  return bx + px_ * (by + py_ * bz);
}

int BlockDecomposition::rank_of_vertex(int i, int j, int k) const {
  // Lowest incident cell: clamp (i-1, j-1, k-1) into the grid.
  const int ci = std::clamp(i - 1, 0, spec_.nx - 1);
  const int cj = std::clamp(j - 1, 0, spec_.ny - 1);
  const int ck = std::clamp(k - 1, 0, spec_.nz - 1);
  return rank_of_cell(ci, cj, ck);
}

int BlockDecomposition::face_neighbours(int rank) const {
  const auto [bx, by, bz] = block_coords(rank);
  int n = 0;
  n += (bx > 0) + (bx < px_ - 1);
  n += (by > 0) + (by < py_ - 1);
  n += (bz > 0) + (bz < pz_ - 1);
  return n;
}

TetMesh build_box_mesh(const BoxMeshSpec& spec) {
  return build_box_submesh(spec, CellBox{0, spec.nx, 0, spec.ny, 0, spec.nz});
}

TetMesh build_box_submesh(const BoxMeshSpec& spec, const CellBox& box) {
  HETERO_REQUIRE(spec.nx >= 1 && spec.ny >= 1 && spec.nz >= 1,
                 "box mesh needs at least one cell per axis");
  HETERO_REQUIRE(box.i0 >= 0 && box.i1 <= spec.nx && box.j0 >= 0 &&
                     box.j1 <= spec.ny && box.k0 >= 0 && box.k1 <= spec.nz &&
                     box.cells() > 0,
                 "cell box out of range or empty");

  const int vi = box.i1 - box.i0 + 1;
  const int vj = box.j1 - box.j0 + 1;
  const int vk = box.k1 - box.k0 + 1;
  std::vector<Vec3> coords;
  std::vector<GlobalId> gids;
  coords.reserve(static_cast<std::size_t>(vi) * vj * vk);
  gids.reserve(coords.capacity());
  for (int k = box.k0; k <= box.k1; ++k) {
    for (int j = box.j0; j <= box.j1; ++j) {
      for (int i = box.i0; i <= box.i1; ++i) {
        coords.push_back(spec.vertex_coord(i, j, k));
        gids.push_back(spec.vertex_gid(i, j, k));
      }
    }
  }
  auto vertex_index = [&](int i, int j, int k) {
    return (i - box.i0) + vi * ((j - box.j0) + vj * (k - box.k0));
  };

  std::vector<std::array<int, 4>> tets;
  tets.reserve(static_cast<std::size_t>(box.cells()) * 6);
  for (int ck = box.k0; ck < box.k1; ++ck) {
    for (int cj = box.j0; cj < box.j1; ++cj) {
      for (int ci = box.i0; ci < box.i1; ++ci) {
        emit_cell_tets(ci, cj, ck, vertex_index, coords, tets);
      }
    }
  }

  TetMesh mesh(std::move(coords), std::move(tets));
  mesh.set_vertex_gids(std::move(gids));
  std::vector<BoundaryFace> faces;
  emit_boundary_faces(spec, box, vertex_index, faces);
  mesh.set_boundary_faces(std::move(faces));
  return mesh;
}

}  // namespace hetero::mesh
