#pragma once

/// \file vtk_writer.hpp
/// Legacy-VTK (ASCII) export of a tetrahedral mesh with nodal scalar and
/// vector fields — the paper's visualization step (iv), consumable by
/// ParaView.

#include <map>
#include <string>
#include <vector>

#include "mesh/tet_mesh.hpp"

namespace hetero::mesh {

/// Time-series export: one legacy-VTK file per step plus a ParaView .pvd
/// collection indexing them by physical time.
class VtkSeriesWriter {
 public:
  /// Files land at `basename_NNNN.vtk` + `basename.pvd`.
  explicit VtkSeriesWriter(std::string basename)
      : basename_(std::move(basename)) {}

  /// Writes one step; the writer takes `frame` fully configured.
  void add_step(double time, const class VtkWriter& frame);

  /// Writes the .pvd collection; call once after the last step.
  void finalize() const;

  int steps() const { return static_cast<int>(times_.size()); }

 private:
  std::string step_path(int index) const;

  std::string basename_;
  std::vector<double> times_;
};

class VtkWriter {
 public:
  explicit VtkWriter(const TetMesh& mesh) : mesh_(&mesh) {}

  /// Adds a nodal scalar field (one value per vertex).
  void add_scalar_field(const std::string& name, std::vector<double> values);

  /// Adds a nodal vector field (three values per vertex, xyz interleaved).
  void add_vector_field(const std::string& name, std::vector<double> xyz);

  /// Writes the dataset; throws on I/O failure.
  void write(const std::string& path) const;

 private:
  const TetMesh* mesh_;
  std::map<std::string, std::vector<double>> scalars_;
  std::map<std::string, std::vector<double>> vectors_;
};

}  // namespace hetero::mesh
