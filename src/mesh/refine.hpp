#pragma once

/// \file refine.hpp
/// Uniform refinement of tetrahedral meshes (Bey's 1:8 red refinement):
/// every tet splits into four corner tets plus four tets tiling the inner
/// octahedron. Edge midpoints are shared, so the refined mesh is conforming;
/// boundary faces split 1:4 with markers preserved. Used by the mesh
/// convergence studies (the accuracy axis the paper's §IV sketches:
/// "the finer the reticulation ... the more precise the solution").

#include "mesh/tet_mesh.hpp"

namespace hetero::mesh {

/// One level of uniform refinement; the result is a self-contained mesh
/// with identity gids (treat it as a new global mesh).
TetMesh refine_uniform(const TetMesh& mesh);

/// Longest-to-shortest edge ratio of tet `t` (1..~1.7 for Kuhn tets; red
/// refinement must not degrade it).
double tet_edge_ratio(const TetMesh& mesh, std::size_t t);

/// Worst edge ratio over the whole mesh.
double worst_edge_ratio(const TetMesh& mesh);

}  // namespace hetero::mesh
