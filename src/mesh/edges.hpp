#pragma once

/// \file edges.hpp
/// Unique edge enumeration of a tetrahedral mesh, needed by the quadratic
/// (P2) finite-element space whose extra unknowns sit at edge midpoints.

#include <array>
#include <vector>

#include "mesh/tet_mesh.hpp"

namespace hetero::mesh {

/// Canonical local edge order of a tetrahedron (pairs of local vertices).
/// P2 shape functions index their edge bubbles in this order.
inline constexpr std::array<std::array<int, 2>, 6> kTetEdgeVertices = {{
    {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
}};

struct EdgeSet {
  /// Unique edges as pairs of local vertex indices, lower index first.
  std::vector<std::array<int, 2>> edges;
  /// For each tet, its six edge ids in kTetEdgeVertices order.
  std::vector<std::array<int, 6>> tet_edges;
};

/// Enumerates the unique edges of `mesh`.
EdgeSet build_edges(const TetMesh& mesh);

/// Globally unique id of the edge between two *global* vertex ids, given the
/// total global vertex count: ids start at `global_vertex_count` and encode
/// the sorted vertex pair. Collision-free for meshes below ~3e9 vertices.
GlobalId edge_gid(GlobalId vertex_a, GlobalId vertex_b,
                  std::int64_t global_vertex_count);

}  // namespace hetero::mesh
