#pragma once

/// \file box_mesh.hpp
/// Structured tetrahedral meshes of a box, and the block decomposition used
/// to hand each rank its own submesh (the paper's mesh-partitioning step (i)
/// for the weak-scaling runs, where the global mesh never fits one node).
///
/// Each hexahedral cell is split into six tetrahedra around the main
/// diagonal (Kuhn/Freudenthal triangulation), which is conforming across
/// cell faces when every cell uses the same diagonal.

#include <array>
#include <cstdint>

#include "mesh/tet_mesh.hpp"

namespace hetero::mesh {

/// A box [lo, hi]³ discretized into nx × ny × nz hexahedral cells.
struct BoxMeshSpec {
  int nx = 1;
  int ny = 1;
  int nz = 1;
  Vec3 lo{0.0, 0.0, 0.0};
  Vec3 hi{1.0, 1.0, 1.0};

  /// Global structured id of vertex (i, j, k), i in [0, nx] etc.
  GlobalId vertex_gid(int i, int j, int k) const;
  std::int64_t vertex_count() const;
  std::int64_t cell_count() const;
  Vec3 vertex_coord(int i, int j, int k) const;
};

/// Half-open cell index ranges of one rank's sub-box.
struct CellBox {
  int i0 = 0, i1 = 0;
  int j0 = 0, j1 = 0;
  int k0 = 0, k1 = 0;

  int cells() const { return (i1 - i0) * (j1 - j0) * (k1 - k0); }
  bool contains(int i, int j, int k) const {
    return i >= i0 && i < i1 && j >= j0 && j < j1 && k >= k0 && k < k1;
  }
};

/// Splits the cell grid into px × py × pz blocks (one per rank).
class BlockDecomposition {
 public:
  /// Picks the most cubic factorization of `ranks` that divides into the
  /// grid; exact cubes (1, 8, 27, ...) become k × k × k.
  BlockDecomposition(const BoxMeshSpec& spec, int ranks);

  int ranks() const { return px_ * py_ * pz_; }
  std::array<int, 3> grid() const { return {px_, py_, pz_}; }

  /// Cell box of `rank` (ranks numbered x-fastest).
  CellBox box(int rank) const;

  /// Rank owning cell (i, j, k).
  int rank_of_cell(int i, int j, int k) const;

  /// Rank owning vertex (i, j, k): the owner of the lexicographically lowest
  /// cell incident to the vertex. Every rank touching the vertex can compute
  /// this locally.
  int rank_of_vertex(int i, int j, int k) const;

  /// Number of face-neighbour blocks of `rank` (for halo models).
  int face_neighbours(int rank) const;

 private:
  std::array<int, 3> block_coords(int rank) const;
  static std::vector<int> split_sizes(int n, int parts);

  BoxMeshSpec spec_;
  int px_ = 1, py_ = 1, pz_ = 1;
  std::vector<int> xs_, ys_, zs_;  // cell-range boundaries per axis
};

/// Builds the complete mesh of `spec` with boundary faces marked 1..6.
TetMesh build_box_mesh(const BoxMeshSpec& spec);

/// Builds the submesh covering `box` (cells only; vertices are the box's
/// vertices). Vertex gids are the structured global ids of `spec`.
TetMesh build_box_submesh(const BoxMeshSpec& spec, const CellBox& box);

}  // namespace hetero::mesh
