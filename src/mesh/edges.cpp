#include "mesh/edges.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/error.hpp"

namespace hetero::mesh {

namespace {
struct PairHash {
  std::size_t operator()(const std::array<int, 2>& e) const {
    return std::hash<std::int64_t>()(
        (static_cast<std::int64_t>(e[0]) << 32) ^ e[1]);
  }
};
}  // namespace

EdgeSet build_edges(const TetMesh& mesh) {
  EdgeSet set;
  set.tet_edges.resize(mesh.tet_count());
  std::unordered_map<std::array<int, 2>, int, PairHash> index;
  index.reserve(mesh.tet_count() * 2);
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    const auto& tet = mesh.tet(t);
    for (std::size_t e = 0; e < kTetEdgeVertices.size(); ++e) {
      int a = tet[static_cast<std::size_t>(kTetEdgeVertices[e][0])];
      int b = tet[static_cast<std::size_t>(kTetEdgeVertices[e][1])];
      if (a > b) {
        std::swap(a, b);
      }
      const std::array<int, 2> key{a, b};
      auto [it, inserted] =
          index.try_emplace(key, static_cast<int>(set.edges.size()));
      if (inserted) {
        set.edges.push_back(key);
      }
      set.tet_edges[t][e] = it->second;
    }
  }
  return set;
}

GlobalId edge_gid(GlobalId vertex_a, GlobalId vertex_b,
                  std::int64_t global_vertex_count) {
  HETERO_REQUIRE(vertex_a != vertex_b, "edge endpoints must differ");
  HETERO_REQUIRE(vertex_a >= 0 && vertex_a < global_vertex_count &&
                     vertex_b >= 0 && vertex_b < global_vertex_count,
                 "edge endpoint gid out of range");
  const GlobalId lo = std::min(vertex_a, vertex_b);
  const GlobalId hi = std::max(vertex_a, vertex_b);
  return global_vertex_count + lo * global_vertex_count + hi;
}

}  // namespace hetero::mesh
