#include "mesh/tet_mesh.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace hetero::mesh {

TetMesh::TetMesh(std::vector<Vec3> vertices,
                 std::vector<std::array<int, 4>> tets)
    : vertices_(std::move(vertices)), tets_(std::move(tets)) {
  vertex_gids_.resize(vertices_.size());
  std::iota(vertex_gids_.begin(), vertex_gids_.end(), GlobalId{0});
}

void TetMesh::set_vertex_gids(std::vector<GlobalId> gids) {
  HETERO_REQUIRE(gids.size() == vertices_.size(),
                 "vertex gid array size must match vertex count");
  vertex_gids_ = std::move(gids);
}

double TetMesh::tet_volume(std::size_t t) const {
  const auto& tet = tets_[t];
  return tet_signed_volume(vertex(tet[0]), vertex(tet[1]), vertex(tet[2]),
                           vertex(tet[3]));
}

void TetMesh::validate() const {
  const int nv = static_cast<int>(vertices_.size());
  for (const auto& tet : tets_) {
    for (int v : tet) {
      HETERO_REQUIRE(v >= 0 && v < nv, "tet vertex index out of range");
    }
  }
  for (std::size_t t = 0; t < tets_.size(); ++t) {
    HETERO_REQUIRE(tet_volume(t) > 0.0,
                   "tet is degenerate or inverted (non-positive volume)");
  }
  HETERO_REQUIRE(vertex_gids_.size() == vertices_.size(),
                 "vertex gid array size mismatch");
  for (const auto& face : boundary_faces_) {
    for (int v : face.vertices) {
      HETERO_REQUIRE(v >= 0 && v < nv, "boundary face vertex out of range");
    }
  }
}

MeshMetrics TetMesh::metrics() const {
  MeshMetrics m;
  m.vertex_count = vertices_.size();
  m.tet_count = tets_.size();
  if (tets_.empty()) {
    return m;
  }
  m.min_tet_volume = m.max_tet_volume = tet_volume(0);
  for (std::size_t t = 0; t < tets_.size(); ++t) {
    const double vol = tet_volume(t);
    m.total_volume += vol;
    m.min_tet_volume = std::min(m.min_tet_volume, vol);
    m.max_tet_volume = std::max(m.max_tet_volume, vol);
  }
  return m;
}

}  // namespace hetero::mesh
