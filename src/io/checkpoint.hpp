#pragma once

/// \file checkpoint.hpp
/// Checkpoint/restart of distributed vectors. Rank 0 gathers owned slices
/// (gids + values) and writes one H5Lite file; restart redistributes by gid,
/// so the job may restart on a *different* rank count — the capability a
/// spot-instance assembly needs when hosts disappear (§VI-D discusses
/// checkpointing as part of conditioning an EC2 image).

#include <string>

#include "la/dist_vector.hpp"
#include "simmpi/comm.hpp"

namespace hetero::io {

/// Collective: writes `v`'s owned entries (with gids) to `path`. The file is
/// written by rank 0 only. `label` names the dataset pair.
void save_checkpoint(simmpi::Comm& comm, const la::DistVector& v,
                     const std::string& label, const std::string& path);

/// Collective: fills `v` (owned entries; ghosts refreshed by the caller)
/// from the checkpoint written by save_checkpoint, matching by gid. Missing
/// gids are an error; extra gids in the file are ignored. A missing,
/// truncated, or corrupt file raises a hetero::Error naming the path and
/// label — never UB.
void load_checkpoint(simmpi::Comm& comm, la::DistVector& v,
                     const std::string& label, const std::string& path);

/// Scalars restored alongside the solver state.
struct SolverCheckpointMeta {
  double time = 0.0;  ///< Physical time at the checkpoint.
  int steps_done = 0; ///< Completed solver steps at the checkpoint.
};

/// Collective: writes both BDF history levels plus {time, steps_done} to ONE
/// file (H5LiteWriter truncates on open, so the datasets must be written
/// together). `u_now` and `u_prev` must share an IndexMap.
void save_solver_checkpoint(simmpi::Comm& comm, const la::DistVector& u_now,
                            const la::DistVector& u_prev, double time,
                            int steps_done, const std::string& path);

/// Collective inverse of save_solver_checkpoint; fills owned entries of both
/// vectors (gid-matched, so the rank count may differ from the writer's) and
/// returns the scalars. Errors carry the path, like load_checkpoint.
SolverCheckpointMeta load_solver_checkpoint(simmpi::Comm& comm,
                                            la::DistVector& u_now,
                                            la::DistVector& u_prev,
                                            const std::string& path);

}  // namespace hetero::io
