#pragma once

/// \file checkpoint.hpp
/// Checkpoint/restart of distributed vectors. Rank 0 gathers owned slices
/// (gids + values) and writes one H5Lite file; restart redistributes by gid,
/// so the job may restart on a *different* rank count — the capability a
/// spot-instance assembly needs when hosts disappear (§VI-D discusses
/// checkpointing as part of conditioning an EC2 image).

#include <string>

#include "la/dist_vector.hpp"
#include "simmpi/comm.hpp"

namespace hetero::io {

/// Collective: writes `v`'s owned entries (with gids) to `path`. The file is
/// written by rank 0 only. `label` names the dataset pair.
void save_checkpoint(simmpi::Comm& comm, const la::DistVector& v,
                     const std::string& label, const std::string& path);

/// Collective: fills `v` (owned entries; ghosts refreshed by the caller)
/// from the checkpoint written by save_checkpoint, matching by gid. Missing
/// gids are an error; extra gids in the file are ignored.
void load_checkpoint(simmpi::Comm& comm, la::DistVector& v,
                     const std::string& label, const std::string& path);

}  // namespace hetero::io
