#pragma once

/// \file h5lite.hpp
/// Minimal hierarchical dataset container — heterolab's stand-in for the
/// HDF5 dependency the paper's stack carries (built with the 1.6 interface
/// for compatibility, as §IV-D notes). One file holds named datasets of
/// doubles or int64s with a shape; the format is a simple self-describing
/// binary layout with a table of contents at the end.
///
/// This is not the real HDF5 format; it reproduces the *capability* the
/// applications need (large array storage + named lookup) without the
/// dependency, per the substitution rules in DESIGN.md.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hetero::io {

/// Dataset element type.
enum class DType : std::uint32_t { kFloat64 = 1, kInt64 = 2 };

struct DatasetInfo {
  DType dtype = DType::kFloat64;
  std::vector<std::uint64_t> shape;

  std::uint64_t element_count() const {
    std::uint64_t n = 1;
    for (auto s : shape) {
      n *= s;
    }
    return n;
  }
};

/// Write-mode file: datasets are appended, the table of contents lands at
/// close(). Writing after close, duplicate names, or I/O failures throw.
///
/// Writes are crash-atomic: all bytes go to `path + ".tmp"`, and only
/// close() fsyncs and rename()s the file into place. A crash mid-write
/// (or a writer destroyed without close()) leaves at most an orphaned
/// `.tmp` behind — the previous file at `path`, if any, stays loadable.
class H5LiteWriter {
 public:
  explicit H5LiteWriter(const std::string& path);
  ~H5LiteWriter();

  H5LiteWriter(const H5LiteWriter&) = delete;
  H5LiteWriter& operator=(const H5LiteWriter&) = delete;

  void write_doubles(const std::string& name,
                     const std::vector<std::uint64_t>& shape,
                     const std::vector<double>& data);
  void write_ints(const std::string& name,
                  const std::vector<std::uint64_t>& shape,
                  const std::vector<std::int64_t>& data);

  /// Flushes the table of contents, fsyncs, and renames the temporary
  /// file into place; until then `path` is untouched.
  void close();

 private:
  void write_raw(const std::string& name, DType dtype,
                 const std::vector<std::uint64_t>& shape, const void* data,
                 std::size_t bytes);

  struct Entry {
    DatasetInfo info;
    std::uint64_t offset = 0;
  };
  std::string path_;
  std::string tmp_path_;
  std::map<std::string, Entry> toc_;
  std::uint64_t cursor_ = 0;
  int fd_ = -1;
  bool closed_ = false;
};

/// Read-mode file; the whole table of contents is parsed at open.
class H5LiteReader {
 public:
  explicit H5LiteReader(const std::string& path);
  ~H5LiteReader();

  H5LiteReader(const H5LiteReader&) = delete;
  H5LiteReader& operator=(const H5LiteReader&) = delete;

  bool has(const std::string& name) const;
  std::vector<std::string> names() const;
  DatasetInfo info(const std::string& name) const;

  std::vector<double> read_doubles(const std::string& name) const;
  std::vector<std::int64_t> read_ints(const std::string& name) const;

 private:
  struct Entry {
    DatasetInfo info;
    std::uint64_t offset = 0;
  };
  const Entry& entry(const std::string& name) const;
  void read_at(std::uint64_t offset, void* out, std::size_t bytes) const;

  std::string path_;
  std::map<std::string, Entry> toc_;
  std::uint64_t file_size_ = 0;
  int fd_ = -1;
};

}  // namespace hetero::io
