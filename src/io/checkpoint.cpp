#include "io/checkpoint.hpp"

#include <unordered_map>

#include "io/h5lite.hpp"
#include "support/error.hpp"

namespace hetero::io {

void save_checkpoint(simmpi::Comm& comm, const la::DistVector& v,
                     const std::string& label, const std::string& path) {
  const la::IndexMap& map = v.map();
  std::vector<la::GlobalId> gids(map.gids().begin(),
                                 map.gids().begin() + map.owned_count());
  std::vector<double> values(v.owned().begin(), v.owned().end());
  const auto all_gids = comm.allgatherv(std::span<const la::GlobalId>(gids));
  const auto all_values = comm.allgatherv(std::span<const double>(values));
  if (comm.rank() == 0) {
    H5LiteWriter writer(path);
    writer.write_ints(label + "/gids",
                      {static_cast<std::uint64_t>(all_gids.size())},
                      all_gids);
    writer.write_doubles(label + "/values",
                         {static_cast<std::uint64_t>(all_values.size())},
                         all_values);
    writer.close();
  }
  comm.barrier();  // nobody reads the file before it is complete
}

void load_checkpoint(simmpi::Comm& comm, la::DistVector& v,
                     const std::string& label, const std::string& path) {
  // Every rank reads the (host-shared) file and picks its owned entries —
  // mirroring the staging-from-shared-volume pattern the paper uses on EC2.
  H5LiteReader reader(path);
  const auto gids = reader.read_ints(label + "/gids");
  const auto values = reader.read_doubles(label + "/values");
  HETERO_REQUIRE(gids.size() == values.size(),
                 "checkpoint: gid/value size mismatch");
  std::unordered_map<la::GlobalId, double> by_gid;
  by_gid.reserve(gids.size());
  for (std::size_t i = 0; i < gids.size(); ++i) {
    by_gid.emplace(gids[i], values[i]);
  }
  const la::IndexMap& map = v.map();
  for (int l = 0; l < map.owned_count(); ++l) {
    const auto it = by_gid.find(map.gid(l));
    HETERO_REQUIRE(it != by_gid.end(),
                   "checkpoint: file is missing a required gid");
    v[l] = it->second;
  }
  comm.barrier();
}

}  // namespace hetero::io
