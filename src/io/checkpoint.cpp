#include "io/checkpoint.hpp"

#include <unordered_map>

#include "io/h5lite.hpp"
#include "support/error.hpp"

namespace hetero::io {

namespace {

// Gathers (gids, values) of the owned slice onto every rank.
void gather_owned(simmpi::Comm& comm, const la::DistVector& v,
                  std::vector<la::GlobalId>* all_gids,
                  std::vector<double>* all_values) {
  const la::IndexMap& map = v.map();
  std::vector<la::GlobalId> gids(map.gids().begin(),
                                 map.gids().begin() + map.owned_count());
  std::vector<double> values(v.owned().begin(), v.owned().end());
  *all_gids = comm.allgatherv(std::span<const la::GlobalId>(gids));
  *all_values = comm.allgatherv(std::span<const double>(values));
}

// Fills v's owned entries from a (gid -> value) table; every gid must be
// present. `context` names the dataset for the error message.
void scatter_owned(la::DistVector& v,
                   const std::unordered_map<la::GlobalId, double>& by_gid,
                   const std::string& context) {
  const la::IndexMap& map = v.map();
  for (int l = 0; l < map.owned_count(); ++l) {
    const auto it = by_gid.find(map.gid(l));
    HETERO_REQUIRE(it != by_gid.end(),
                   "checkpoint: " + context + " is missing a required gid");
    v[l] = it->second;
  }
}

std::unordered_map<la::GlobalId, double> index_by_gid(
    const std::vector<la::GlobalId>& gids, const std::vector<double>& values,
    const std::string& context) {
  HETERO_REQUIRE(gids.size() == values.size(),
                 "checkpoint: gid/value size mismatch in " + context);
  std::unordered_map<la::GlobalId, double> by_gid;
  by_gid.reserve(gids.size());
  for (std::size_t i = 0; i < gids.size(); ++i) {
    by_gid.emplace(gids[i], values[i]);
  }
  return by_gid;
}

// Wraps h5lite/format errors with the restore context (which file, which
// dataset) so a truncated checkpoint produces an actionable diagnostic.
template <class Fn>
auto with_restore_context(const std::string& what, const std::string& path,
                          Fn&& fn) {
  try {
    return fn();
  } catch (const Error& err) {
    throw Error("checkpoint: cannot restore " + what + " from '" + path +
                "': " + err.what());
  }
}

}  // namespace

void save_checkpoint(simmpi::Comm& comm, const la::DistVector& v,
                     const std::string& label, const std::string& path) {
  std::vector<la::GlobalId> all_gids;
  std::vector<double> all_values;
  gather_owned(comm, v, &all_gids, &all_values);
  if (comm.rank() == 0) {
    H5LiteWriter writer(path);
    writer.write_ints(label + "/gids",
                      {static_cast<std::uint64_t>(all_gids.size())},
                      all_gids);
    writer.write_doubles(label + "/values",
                         {static_cast<std::uint64_t>(all_values.size())},
                         all_values);
    writer.close();
  }
  comm.barrier();  // nobody reads the file before it is complete
}

void load_checkpoint(simmpi::Comm& comm, la::DistVector& v,
                     const std::string& label, const std::string& path) {
  // Every rank reads the (host-shared) file and picks its owned entries —
  // mirroring the staging-from-shared-volume pattern the paper uses on EC2.
  with_restore_context("'" + label + "'", path, [&] {
    H5LiteReader reader(path);
    const auto gids = reader.read_ints(label + "/gids");
    const auto values = reader.read_doubles(label + "/values");
    scatter_owned(v, index_by_gid(gids, values, "'" + label + "'"),
                  "'" + label + "'");
  });
  comm.barrier();
}

void save_solver_checkpoint(simmpi::Comm& comm, const la::DistVector& u_now,
                            const la::DistVector& u_prev, double time,
                            int steps_done, const std::string& path) {
  HETERO_REQUIRE(&u_now.map() == &u_prev.map(),
                 "solver checkpoint: u_now and u_prev must share a map");
  std::vector<la::GlobalId> all_gids;
  std::vector<double> all_now;
  gather_owned(comm, u_now, &all_gids, &all_now);
  std::vector<la::GlobalId> prev_gids;
  std::vector<double> all_prev;
  gather_owned(comm, u_prev, &prev_gids, &all_prev);
  if (comm.rank() == 0) {
    H5LiteWriter writer(path);
    writer.write_ints("state/gids",
                      {static_cast<std::uint64_t>(all_gids.size())},
                      all_gids);
    writer.write_doubles("state/now",
                         {static_cast<std::uint64_t>(all_now.size())},
                         all_now);
    writer.write_doubles("state/prev",
                         {static_cast<std::uint64_t>(all_prev.size())},
                         all_prev);
    writer.write_doubles("state/meta", {2},
                         {time, static_cast<double>(steps_done)});
    writer.close();
  }
  comm.barrier();
}

SolverCheckpointMeta load_solver_checkpoint(simmpi::Comm& comm,
                                            la::DistVector& u_now,
                                            la::DistVector& u_prev,
                                            const std::string& path) {
  SolverCheckpointMeta meta;
  with_restore_context("solver state", path, [&] {
    H5LiteReader reader(path);
    const auto gids = reader.read_ints("state/gids");
    const auto now = reader.read_doubles("state/now");
    const auto prev = reader.read_doubles("state/prev");
    const auto scalars = reader.read_doubles("state/meta");
    HETERO_REQUIRE(scalars.size() == 2,
                   "solver checkpoint: malformed state/meta");
    scatter_owned(u_now, index_by_gid(gids, now, "state/now"), "state/now");
    scatter_owned(u_prev, index_by_gid(gids, prev, "state/prev"),
                  "state/prev");
    meta.time = scalars[0];
    meta.steps_done = static_cast<int>(scalars[1]);
  });
  comm.barrier();
  return meta;
}

}  // namespace hetero::io
