#include "io/h5lite.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "support/error.hpp"
#include "support/io_util.hpp"

namespace hetero::io {

namespace {
constexpr std::uint64_t kMagic = 0x48354C4954453031ULL;  // "H5LITE01"

void write_all(int fd, const void* data, std::size_t bytes) {
  HETERO_REQUIRE(support::write_all(fd, data, bytes), "h5lite: write failed");
}

void read_all(int fd, void* data, std::size_t bytes) {
  HETERO_REQUIRE(support::read_full(fd, data, bytes) ==
                     static_cast<ssize_t>(bytes),
                 "h5lite: short read (corrupt file?)");
}
}  // namespace

H5LiteWriter::H5LiteWriter(const std::string& path)
    : path_(path), tmp_path_(path + ".tmp") {
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  HETERO_REQUIRE(fd_ >= 0, "h5lite: cannot create " + tmp_path_);
  write_all(fd_, &kMagic, sizeof(kMagic));
  cursor_ = sizeof(kMagic);
}

H5LiteWriter::~H5LiteWriter() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Destructor must not throw; the previous file at path_ (if any)
      // stays in place and the abandoned .tmp is removed below.
    }
  }
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(tmp_path_.c_str());
  }
}

void H5LiteWriter::write_raw(const std::string& name, DType dtype,
                             const std::vector<std::uint64_t>& shape,
                             const void* data, std::size_t bytes) {
  HETERO_REQUIRE(!closed_, "h5lite: writer already closed");
  HETERO_REQUIRE(!name.empty(), "h5lite: dataset name must not be empty");
  HETERO_REQUIRE(toc_.find(name) == toc_.end(),
                 "h5lite: duplicate dataset name: " + name);
  Entry entry;
  entry.info.dtype = dtype;
  entry.info.shape = shape;
  const std::size_t element_size = 8;
  HETERO_REQUIRE(entry.info.element_count() * element_size == bytes,
                 "h5lite: shape does not match data size for " + name);
  entry.offset = cursor_;
  write_all(fd_, data, bytes);
  cursor_ += bytes;
  toc_.emplace(name, entry);
}

void H5LiteWriter::write_doubles(const std::string& name,
                                 const std::vector<std::uint64_t>& shape,
                                 const std::vector<double>& data) {
  write_raw(name, DType::kFloat64, shape, data.data(), data.size() * 8);
}

void H5LiteWriter::write_ints(const std::string& name,
                              const std::vector<std::uint64_t>& shape,
                              const std::vector<std::int64_t>& data) {
  write_raw(name, DType::kInt64, shape, data.data(), data.size() * 8);
}

void H5LiteWriter::close() {
  if (closed_) {
    return;
  }
  // TOC layout: per entry {u32 name_len, name bytes, u32 dtype, u32 ndims,
  // u64 dims..., u64 offset}; footer {u64 toc_offset, u64 count, magic}.
  const std::uint64_t toc_offset = cursor_;
  for (const auto& [name, entry] : toc_) {
    const auto name_len = static_cast<std::uint32_t>(name.size());
    write_all(fd_, &name_len, sizeof(name_len));
    write_all(fd_, name.data(), name.size());
    const auto dtype = static_cast<std::uint32_t>(entry.info.dtype);
    write_all(fd_, &dtype, sizeof(dtype));
    const auto ndims = static_cast<std::uint32_t>(entry.info.shape.size());
    write_all(fd_, &ndims, sizeof(ndims));
    for (std::uint64_t d : entry.info.shape) {
      write_all(fd_, &d, sizeof(d));
    }
    write_all(fd_, &entry.offset, sizeof(entry.offset));
  }
  const std::uint64_t count = toc_.size();
  write_all(fd_, &toc_offset, sizeof(toc_offset));
  write_all(fd_, &count, sizeof(count));
  write_all(fd_, &kMagic, sizeof(kMagic));
  // Durability point: the complete file must be on disk before the rename
  // publishes it, otherwise a crash could expose a truncated "finished"
  // checkpoint. rename(2) within a directory is atomic, so readers see
  // either the old file or the new one, never a partial write.
  HETERO_REQUIRE(::fsync(fd_) == 0, "h5lite: fsync failed for " + tmp_path_);
  ::close(fd_);
  fd_ = -1;
  HETERO_REQUIRE(std::rename(tmp_path_.c_str(), path_.c_str()) == 0,
                 "h5lite: cannot rename " + tmp_path_ + " into place");
  closed_ = true;
}

H5LiteReader::H5LiteReader(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  HETERO_REQUIRE(fd_ >= 0, "h5lite: cannot open " + path);
  // Size check comes first so an empty or truncated file is reported as
  // such, not as a short read halfway through parsing. The minimum valid
  // file is the leading magic plus the 24-byte footer.
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  file_size_ = static_cast<std::uint64_t>(size);
  HETERO_REQUIRE(size >= static_cast<off_t>(4 * sizeof(std::uint64_t)),
                 "h5lite: file truncated: " + path);
  std::uint64_t magic = 0;
  read_at(0, &magic, sizeof(magic));
  HETERO_REQUIRE(magic == kMagic, "h5lite: bad magic in " + path);
  std::uint64_t footer[3];
  read_at(file_size_ - sizeof(footer), footer, sizeof(footer));
  HETERO_REQUIRE(footer[2] == kMagic,
                 "h5lite: missing footer (file not closed?): " + path);
  const std::uint64_t toc_offset = footer[0];
  const std::uint64_t count = footer[1];
  HETERO_REQUIRE(
      toc_offset >= sizeof(kMagic) && toc_offset <= file_size_ - sizeof(footer),
      "h5lite: corrupt TOC offset in " + path);
  ::lseek(fd_, static_cast<off_t>(toc_offset), SEEK_SET);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    read_all(fd_, &name_len, sizeof(name_len));
    HETERO_REQUIRE(name_len > 0 && name_len <= file_size_,
                   "h5lite: corrupt TOC entry in " + path);
    std::string name(name_len, '\0');
    read_all(fd_, name.data(), name_len);
    std::uint32_t dtype = 0;
    std::uint32_t ndims = 0;
    read_all(fd_, &dtype, sizeof(dtype));
    read_all(fd_, &ndims, sizeof(ndims));
    HETERO_REQUIRE(dtype == static_cast<std::uint32_t>(DType::kFloat64) ||
                       dtype == static_cast<std::uint32_t>(DType::kInt64),
                   "h5lite: unknown dtype in " + path);
    HETERO_REQUIRE(ndims <= 32, "h5lite: corrupt TOC entry in " + path);
    Entry entry;
    entry.info.dtype = static_cast<DType>(dtype);
    entry.info.shape.resize(ndims);
    for (auto& d : entry.info.shape) {
      read_all(fd_, &d, sizeof(d));
    }
    read_all(fd_, &entry.offset, sizeof(entry.offset));
    // The payload must fit between the header and the TOC.
    HETERO_REQUIRE(entry.offset >= sizeof(kMagic) &&
                       entry.info.element_count() * 8 <= toc_offset &&
                       entry.offset <= toc_offset -
                                           entry.info.element_count() * 8,
                   "h5lite: dataset extends past the TOC in " + path);
    toc_.emplace(std::move(name), entry);
  }
}

H5LiteReader::~H5LiteReader() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool H5LiteReader::has(const std::string& name) const {
  return toc_.find(name) != toc_.end();
}

std::vector<std::string> H5LiteReader::names() const {
  std::vector<std::string> out;
  out.reserve(toc_.size());
  for (const auto& [name, entry] : toc_) {
    out.push_back(name);
  }
  return out;
}

const H5LiteReader::Entry& H5LiteReader::entry(
    const std::string& name) const {
  const auto it = toc_.find(name);
  HETERO_REQUIRE(it != toc_.end(), "h5lite: no dataset named " + name);
  return it->second;
}

DatasetInfo H5LiteReader::info(const std::string& name) const {
  return entry(name).info;
}

void H5LiteReader::read_at(std::uint64_t offset, void* out,
                           std::size_t bytes) const {
  ::lseek(fd_, static_cast<off_t>(offset), SEEK_SET);
  read_all(fd_, out, bytes);
}

std::vector<double> H5LiteReader::read_doubles(const std::string& name) const {
  const Entry& e = entry(name);
  HETERO_REQUIRE(e.info.dtype == DType::kFloat64,
                 "h5lite: dataset is not float64: " + name);
  std::vector<double> out(e.info.element_count());
  read_at(e.offset, out.data(), out.size() * 8);
  return out;
}

std::vector<std::int64_t> H5LiteReader::read_ints(
    const std::string& name) const {
  const Entry& e = entry(name);
  HETERO_REQUIRE(e.info.dtype == DType::kInt64,
                 "h5lite: dataset is not int64: " + name);
  std::vector<std::int64_t> out(e.info.element_count());
  read_at(e.offset, out.data(), out.size() * 8);
  return out;
}

}  // namespace hetero::io
