#pragma once

/// \file capability_table.hpp
/// Renders the paper's Table I: the side-by-side capability matrix of the
/// four platforms, including the "how we addressed the missing capability"
/// annotations.

#include "platform/platform_spec.hpp"
#include "support/table.hpp"

namespace hetero::platform {

/// Builds Table I over the given platforms (defaults to all four).
Table capability_table(std::vector<const PlatformSpec*> platforms = {});

}  // namespace hetero::platform
