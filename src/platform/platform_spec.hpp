#pragma once

/// \file platform_spec.hpp
/// The four heterogeneous target platforms of the paper (§V, Table I) as
/// data: hardware shape, interconnect, access/support/build attributes,
/// cost model, scheduler kind, queue behaviour, and the platform-specific
/// *launch limits* the paper ran into (ellipse's >512-rank mpiexec failure,
/// lagrange's InfiniBand data-volume cap above 343 ranks).

#include <optional>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "netsim/fabric.hpp"
#include "netsim/topology.hpp"

namespace hetero::platform {

enum class AccessMode { kUserSpace, kRoot };
enum class SchedulerKind { kPbs, kSge, kShell };

/// Everything Table I records about one platform, plus the quantitative
/// models derived from §V and §VII-D.
struct PlatformSpec {
  std::string name;

  // --- hardware -----------------------------------------------------------
  std::string cpu_arch;
  int sockets = 2;
  int cores_per_socket = 2;
  double ram_per_core_gb = 1.0;
  std::string network_name;
  /// Relative per-core throughput; 1.0 = puma's Opteron 2214 reference.
  double cpu_speed_factor = 1.0;
  /// Largest assembly the site can provide, in nodes.
  int max_nodes = 1;

  // --- secondary attributes (Table I rows) ---------------------------------
  std::string storage_note;
  AccessMode access = AccessMode::kUserSpace;
  std::string support_level;
  std::string build_env_note;
  std::string compiler_note;
  std::string dependencies_note;
  std::string mpi_note;
  bool parallel_jobs_configured = true;
  SchedulerKind scheduler = SchedulerKind::kPbs;

  // --- launch limits observed in §VII-A ------------------------------------
  /// Jobs above this rank count fail to launch (0 = unlimited).
  int max_ranks = 0;
  std::string limit_reason;

  // --- cost model (§VII-D) --------------------------------------------------
  double cost_per_core_hour_usd = 0.0;
  /// EC2 charges whole instances regardless of cores used.
  bool whole_node_billing = false;
  double node_hour_usd = 0.0;       // on-demand, when whole-node billed
  double spot_node_hour_usd = 0.0;  // 0 = no spot market

  // --- availability (queue wait) --------------------------------------------
  /// Lognormal queue-wait parameters (seconds) for a modest job; the
  /// scheduler scales the wait with requested fraction of the machine.
  double queue_wait_median_s = 0.0;
  double queue_wait_sigma = 0.5;

  int cores_per_node() const { return sockets * cores_per_socket; }
  int max_cores() const { return max_nodes * cores_per_node(); }

  /// Can this platform even launch `ranks` processes?
  bool can_launch(int ranks) const {
    if (ranks > max_cores()) {
      return false;
    }
    return max_ranks == 0 || ranks <= max_ranks;
  }

  /// Inter-node fabric model for this platform.
  netsim::Fabric fabric() const;

  /// Per-core compute rates for the virtual clocks / perf model.
  apps::CpuCostModel cpu_model() const;

  /// Topology for a `ranks`-process job packed `cores_per_node()` per node.
  netsim::Topology topology(int ranks) const;

  /// Dollar cost of running `ranks` ranks for `seconds`. With whole-node
  /// billing the cost covers ceil(ranks / cores_per_node()) nodes; `spot`
  /// uses the spot node price when one exists.
  double cost_usd(int ranks, double seconds, bool spot = false) const;
};

/// Builtin platforms (paper §V-A..D).
const PlatformSpec& puma();
const PlatformSpec& ellipse();
const PlatformSpec& lagrange();
const PlatformSpec& ec2();

/// All four, in the paper's order.
std::vector<const PlatformSpec*> all_platforms();

/// Lookup by name; throws for unknown names.
const PlatformSpec& platform_by_name(const std::string& name);

}  // namespace hetero::platform
