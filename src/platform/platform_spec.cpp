#include "platform/platform_spec.hpp"

#include <cmath>

#include "support/error.hpp"

namespace hetero::platform {

netsim::Fabric PlatformSpec::fabric() const {
  if (network_name == "1GbE") {
    return netsim::Fabric::gigabit_ethernet();
  }
  if (network_name == "10GbE") {
    return netsim::Fabric::ten_gigabit_ethernet();
  }
  if (network_name == "IB 4X DDR") {
    return netsim::Fabric::infiniband_ddr_4x();
  }
  throw Error("unknown network fabric: " + network_name);
}

apps::CpuCostModel PlatformSpec::cpu_model() const {
  apps::CpuCostModel cpu;
  cpu.speed_factor = cpu_speed_factor;
  return cpu;
}

netsim::Topology PlatformSpec::topology(int ranks) const {
  return netsim::Topology::uniform(ranks, cores_per_node(), fabric(),
                                   netsim::Fabric::shared_memory());
}

double PlatformSpec::cost_usd(int ranks, double seconds, bool spot) const {
  HETERO_REQUIRE(ranks >= 1 && seconds >= 0.0,
                 "cost_usd: bad ranks or duration");
  const double hours = seconds / 3600.0;
  if (whole_node_billing) {
    const int nodes = (ranks + cores_per_node() - 1) / cores_per_node();
    const double price =
        spot && spot_node_hour_usd > 0.0 ? spot_node_hour_usd : node_hour_usd;
    return nodes * price * hours;
  }
  HETERO_REQUIRE(!spot, "platform has no spot market: " + name);
  return ranks * cost_per_core_hour_usd * hours;
}

// ---------------------------------------------------------------------------
// Builtin platforms. Numbers are from §V and §VII-D of the paper; CPU speed
// factors are relative single-core throughput estimates for the era
// (reference: puma's Opteron 2214 = 1.0).
// ---------------------------------------------------------------------------

const PlatformSpec& puma() {
  static const PlatformSpec spec = [] {
    PlatformSpec s;
    s.name = "puma";
    s.cpu_arch = "Opteron 2214";
    s.sockets = 2;
    s.cores_per_socket = 2;
    s.ram_per_core_gb = 1.0;
    s.network_name = "1GbE";
    s.cpu_speed_factor = 1.0;
    s.max_nodes = 32;  // 128 cores: the LifeV home cluster
    s.storage_note = "OK (80GB local scratch)";
    s.access = AccessMode::kUserSpace;
    s.support_level = "full";
    s.build_env_note = "yes";
    s.compiler_note = "GCC 4.3.4";
    s.dependencies_note = "all preinstalled";
    s.mpi_note = "Open MPI";
    s.parallel_jobs_configured = true;
    s.scheduler = SchedulerKind::kPbs;
    s.max_ranks = 0;
    s.cost_per_core_hour_usd = 0.023;  // capital + operating estimate
    s.queue_wait_median_s = 15.0 * 60.0;  // small internal queue
    s.queue_wait_sigma = 0.8;
    return s;
  }();
  return spec;
}

const PlatformSpec& ellipse() {
  static const PlatformSpec spec = [] {
    PlatformSpec s;
    s.name = "ellipse";
    s.cpu_arch = "Opteron 2218";
    s.sockets = 2;
    s.cores_per_socket = 2;
    s.ram_per_core_gb = 1.0;
    s.network_name = "1GbE";
    s.cpu_speed_factor = 1.15;  // 2.6 GHz vs 2.2 GHz
    s.max_nodes = 256;
    s.storage_note = "insufficient disk quota";
    s.access = AccessMode::kUserSpace;
    s.support_level = "very limited";
    s.build_env_note = "yes";
    s.compiler_note = "GCC 4.1.2";
    s.dependencies_note = "none; source install";
    s.mpi_note = "none; source install";
    s.parallel_jobs_configured = false;  // SGE serial batches only
    s.scheduler = SchedulerKind::kSge;
    // mpiexec could not initialize jobs above 512 remote daemons (§VII-A).
    s.max_ranks = 512;
    s.limit_reason = "SGE not configured for parallel jobs; mpiexec fails "
                     "to spawn > 512 remote daemons";
    s.cost_per_core_hour_usd = 0.05;  // university flat rate
    s.queue_wait_median_s = 2.0 * 3600.0;
    s.queue_wait_sigma = 1.0;
    return s;
  }();
  return spec;
}

const PlatformSpec& lagrange() {
  static const PlatformSpec spec = [] {
    PlatformSpec s;
    s.name = "lagrange";
    s.cpu_arch = "Xeon X5660";
    s.sockets = 2;
    s.cores_per_socket = 6;
    s.ram_per_core_gb = 2.0;  // 24 GB / 12 cores
    s.network_name = "IB 4X DDR";
    s.cpu_speed_factor = 2.2;  // Westmere vs K8
    s.max_nodes = 100;  // ample: TOP500 #136 when assembled
    s.storage_note = "OK";
    s.access = AccessMode::kUserSpace;
    s.support_level = "limited";
    s.build_env_note = "yes";
    s.compiler_note = "GCC 4.1.2 / Intel 12.1";
    s.dependencies_note = "blas, lapack (MKL); rest source install";
    s.mpi_note = "Open MPI / Intel MPI";
    s.parallel_jobs_configured = true;
    s.scheduler = SchedulerKind::kPbs;
    // IB adapters hit the configured data-volume cap above 343 ranks.
    s.max_ranks = 343;
    s.limit_reason = "configured IB data-volume limit exceeded above 343 "
                     "processes";
    s.cost_per_core_hour_usd = 0.1919;  // EUR 0.15 at the prevailing rate
    s.queue_wait_median_s = 8.0 * 3600.0;  // shared supercomputer queue
    s.queue_wait_sigma = 1.2;
    return s;
  }();
  return spec;
}

const PlatformSpec& ec2() {
  static const PlatformSpec spec = [] {
    PlatformSpec s;
    s.name = "ec2";
    s.cpu_arch = "Xeon E5 (cc2.8xlarge)";
    s.sockets = 2;
    s.cores_per_socket = 8;
    s.ram_per_core_gb = 3.8;  // 60.5 GB / 16 cores
    s.network_name = "10GbE";
    s.cpu_speed_factor = 2.8;  // Sandy Bridge
    s.max_nodes = 1000;  // effectively unlimited on demand
    s.storage_note = "insufficient; boot image resized";
    s.access = AccessMode::kRoot;
    s.support_level = "none";
    s.build_env_note = "none; yum install";
    s.compiler_note = "none; yum (GCC 4.4.5)";
    s.dependencies_note = "none; source install";
    s.mpi_note = "none; yum (Open MPI 1.4.4)";
    s.parallel_jobs_configured = false;  // plain shell + hosts file
    s.scheduler = SchedulerKind::kShell;
    s.max_ranks = 0;
    s.cost_per_core_hour_usd = 0.15;  // $2.40 / 16 cores
    s.whole_node_billing = true;
    s.node_hour_usd = 2.40;
    s.spot_node_hour_usd = 0.54;
    s.queue_wait_median_s = 3.0 * 60.0;  // instance boot + image start
    s.queue_wait_sigma = 0.3;
    return s;
  }();
  return spec;
}

std::vector<const PlatformSpec*> all_platforms() {
  return {&puma(), &ellipse(), &lagrange(), &ec2()};
}

const PlatformSpec& platform_by_name(const std::string& name) {
  for (const PlatformSpec* spec : all_platforms()) {
    if (spec->name == name) {
      return *spec;
    }
  }
  throw Error("unknown platform: " + name);
}

}  // namespace hetero::platform
