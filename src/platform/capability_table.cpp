#include "platform/capability_table.hpp"

#include <cstdio>

namespace hetero::platform {

Table capability_table(std::vector<const PlatformSpec*> platforms) {
  if (platforms.empty()) {
    platforms = all_platforms();
  }
  std::vector<std::string> header{"attribute"};
  for (const auto* p : platforms) {
    header.push_back(p->name);
  }
  Table table(std::move(header));

  auto row = [&](const std::string& label, auto&& getter) {
    std::vector<std::string> cells{label};
    for (const auto* p : platforms) {
      cells.push_back(getter(*p));
    }
    table.add_row(std::move(cells));
  };

  row("cpu arch.", [](const PlatformSpec& p) { return p.cpu_arch; });
  row("# cpu/cores", [](const PlatformSpec& p) {
    return std::to_string(p.sockets) + "/" +
           std::to_string(p.cores_per_socket);
  });
  row("RAM/core", [](const PlatformSpec& p) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fGB", p.ram_per_core_gb);
    return std::string(buf);
  });
  row("network", [](const PlatformSpec& p) { return p.network_name; });
  row("storage", [](const PlatformSpec& p) { return p.storage_note; });
  row("access", [](const PlatformSpec& p) {
    return p.access == AccessMode::kRoot ? std::string("root")
                                         : std::string("user space");
  });
  row("support", [](const PlatformSpec& p) { return p.support_level; });
  row("build env.", [](const PlatformSpec& p) { return p.build_env_note; });
  row("compiler", [](const PlatformSpec& p) { return p.compiler_note; });
  row("dependencies",
      [](const PlatformSpec& p) { return p.dependencies_note; });
  row("MPI", [](const PlatformSpec& p) { return p.mpi_note; });
  row("parallel jobs", [](const PlatformSpec& p) {
    return p.parallel_jobs_configured ? std::string("yes")
                                      : std::string("no");
  });
  row("execution", [](const PlatformSpec& p) {
    switch (p.scheduler) {
      case SchedulerKind::kPbs: return std::string("PBS");
      case SchedulerKind::kSge: return std::string("SGE");
      case SchedulerKind::kShell: return std::string("shell");
    }
    return std::string("?");
  });
  row("cost/core-hour", [](const PlatformSpec& p) {
    char buf[48];
    if (p.whole_node_billing) {
      std::snprintf(buf, sizeof(buf), "%.3f c (node $%.2f/h)",
                    p.cost_per_core_hour_usd * 100.0, p.node_hour_usd);
    } else {
      std::snprintf(buf, sizeof(buf), "%.2f c",
                    p.cost_per_core_hour_usd * 100.0);
    }
    return std::string(buf);
  });
  row("launch limit", [](const PlatformSpec& p) {
    return p.max_ranks == 0 ? std::string("none")
                            : std::to_string(p.max_ranks) + " ranks";
  });
  return table;
}

}  // namespace hetero::platform
