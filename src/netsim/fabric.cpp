#include "netsim/fabric.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace hetero::netsim {

Fabric::Fabric(FabricParams params) : params_(std::move(params)) {
  HETERO_REQUIRE(params_.latency_s >= 0.0, "fabric latency must be >= 0");
  HETERO_REQUIRE(params_.bandwidth_bps > 0.0, "fabric bandwidth must be > 0");
  HETERO_REQUIRE(params_.rendezvous_extra_s >= 0.0,
                 "rendezvous extra cost must be >= 0");
  if (params_.node_injection_bps <= 0.0) {
    params_.node_injection_bps = params_.bandwidth_bps;
  }
}

double Fabric::message_time(std::uint64_t bytes) const {
  double time = params_.latency_s +
                static_cast<double>(bytes) / params_.bandwidth_bps;
  if (bytes >= params_.eager_threshold_bytes) {
    time += params_.rendezvous_extra_s;
  }
  return time;
}

double Fabric::injection_time(std::uint64_t bytes, int flows) const {
  HETERO_REQUIRE(flows >= 1, "injection_time requires flows >= 1");
  // Per-message latency is paid once (flows progress concurrently) but the
  // payload serializes on whichever is narrower: the per-flow link or the
  // node NIC shared by all flows.
  const double total_bytes = static_cast<double>(bytes) * flows;
  const double wire = std::max(
      static_cast<double>(bytes) / params_.bandwidth_bps,
      total_bytes / params_.node_injection_bps);
  double time = params_.latency_s + wire;
  if (bytes >= params_.eager_threshold_bytes) {
    time += params_.rendezvous_extra_s;
  }
  return time;
}

double Fabric::effective_bandwidth(std::uint64_t bytes) const {
  HETERO_REQUIRE(bytes > 0, "effective_bandwidth requires bytes > 0");
  return static_cast<double>(bytes) / message_time(bytes);
}

// Parameter provenance: published MPI ping-pong figures for 2011-2012 era
// hardware. Absolute values matter less than their ratios — the paper's
// weak-scaling *shapes* are driven by latency and per-node injection limits.

Fabric Fabric::gigabit_ethernet() {
  return Fabric(FabricParams{
      .name = "1GbE",
      .latency_s = 50e-6,            // TCP/GigE MPI one-way latency
      .bandwidth_bps = 112e6,        // ~90% of 125 MB/s line rate
      .eager_threshold_bytes = 64 * 1024,
      .rendezvous_extra_s = 60e-6,
      .node_injection_bps = 112e6,   // one NIC per node
      .oversubscription = 24.0,      // department-grade switch stack + TCP
  });
}

Fabric Fabric::ten_gigabit_ethernet() {
  return Fabric(FabricParams{
      .name = "10GbE",
      // EC2 cc2.8xlarge: 10 GbE through a virtualized NIC; latency is much
      // worse than bare-metal 10 GbE and observed bandwidth ~8.5 Gb/s.
      .latency_s = 90e-6,
      .bandwidth_bps = 1.06e9,
      .eager_threshold_bytes = 64 * 1024,
      .rendezvous_extra_s = 100e-6,
      .node_injection_bps = 1.06e9,
      .oversubscription = 28.0,      // virtualized multi-tenant fabric
  });
}

Fabric Fabric::infiniband_ddr_4x() {
  return Fabric(FabricParams{
      .name = "IB 4X DDR",
      .latency_s = 2.5e-6,           // verbs-level ~1.5 us + MPI overhead
      .bandwidth_bps = 1.6e9,        // 16 Gb/s data rate after 8b/10b
      .eager_threshold_bytes = 12 * 1024,
      .rendezvous_extra_s = 5e-6,
      .node_injection_bps = 1.9e9,
      .oversubscription = 0.3,       // full-bisection fat tree
  });
}

Fabric Fabric::shared_memory() {
  return Fabric(FabricParams{
      .name = "shm",
      .latency_s = 0.6e-6,
      .bandwidth_bps = 3.0e9,        // copy-in/copy-out through shared pages
      .eager_threshold_bytes = 4 * 1024,
      .rendezvous_extra_s = 0.8e-6,
      .node_injection_bps = 6.0e9,   // memory bus, not NIC
  });
}

}  // namespace hetero::netsim
