#include "netsim/collectives.hpp"

#include <algorithm>
#include <cmath>

namespace hetero::netsim {

namespace {

int ceil_log2(int n) {
  int bits = 0;
  int v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

/// Cost of one tree/ring step that may cross nodes. When several ranks share
/// a node, early tree levels stay on-node (ranks are placed consecutively),
/// so a fraction of steps uses the cheap intra-node fabric.
double step_time(const Topology& topo, std::uint64_t bytes, bool off_node) {
  const Fabric& fabric =
      off_node ? topo.inter_node_fabric() : topo.intra_node_fabric();
  double t = fabric.message_time(bytes);
  if (off_node) {
    t *= topo.contention_scale();
    if (topo.cross_group_penalty() > 0.0) {
      // Trees do not respect group boundaries; assume a proportional share
      // of steps crosses groups.
      t *= 1.0 + 0.5 * topo.cross_group_penalty();
    }
  }
  return t;
}

/// Number of tree levels that can be satisfied inside a node.
int on_node_levels(const Topology& topo) {
  return ceil_log2(std::min(topo.ranks(), topo.ranks_per_node()));
}

double tree_time(const Topology& topo, std::uint64_t bytes) {
  const int levels = ceil_log2(topo.ranks());
  const int local = std::min(levels, on_node_levels(topo));
  double t = 0.0;
  for (int level = 0; level < levels; ++level) {
    t += step_time(topo, bytes, /*off_node=*/level >= local);
  }
  return t;
}

}  // namespace

double barrier_time(const Topology& topo) {
  if (topo.ranks() <= 1) {
    return 0.0;
  }
  // Dissemination barrier: ceil(log2 p) rounds of zero-payload messages.
  return tree_time(topo, 8);
}

double bcast_time(const Topology& topo, std::uint64_t bytes) {
  if (topo.ranks() <= 1) {
    return 0.0;
  }
  return tree_time(topo, bytes);
}

double allreduce_time(const Topology& topo, std::uint64_t bytes) {
  if (topo.ranks() <= 1) {
    return 0.0;
  }
  // Recursive doubling: log2 p exchange rounds of the full payload.
  return tree_time(topo, bytes);
}

double reduce_time(const Topology& topo, std::uint64_t bytes) {
  if (topo.ranks() <= 1) {
    return 0.0;
  }
  return tree_time(topo, bytes);
}

double gather_time(const Topology& topo, std::uint64_t bytes_per_rank) {
  const int p = topo.ranks();
  if (p <= 1) {
    return 0.0;
  }
  // Root receives p-1 messages; they serialize on the root's link. Count
  // the off-node ones against the inter-node fabric.
  const int on_node = std::min(p, topo.ranks_per_node()) - 1;
  const int off_node = p - 1 - on_node;
  double t = 0.0;
  if (on_node > 0) {
    t += static_cast<double>(on_node) *
         topo.intra_node_fabric().message_time(bytes_per_rank);
  }
  if (off_node > 0) {
    t += static_cast<double>(off_node) *
         topo.inter_node_fabric().message_time(bytes_per_rank) *
         topo.contention_scale();
  }
  return t;
}

double allgather_time(const Topology& topo, std::uint64_t bytes_per_rank) {
  const int p = topo.ranks();
  if (p <= 1) {
    return 0.0;
  }
  // Ring: p-1 steps, payload grows but per-step send is bytes_per_rank ×
  // (accumulated blocks) / steps ≈ bytes_per_rank per step for the classic
  // algorithm that forwards one block per step.
  const int off_steps =
      p <= topo.ranks_per_node() ? 0 : (p - 1) * (topo.nodes() - 1) /
                                           std::max(1, topo.nodes());
  const int on_steps = (p - 1) - off_steps;
  return static_cast<double>(on_steps) *
             topo.intra_node_fabric().message_time(bytes_per_rank) +
         static_cast<double>(off_steps) *
             step_time(topo, bytes_per_rank, true);
}

double alltoall_time(const Topology& topo, std::uint64_t bytes_per_pair) {
  const int p = topo.ranks();
  if (p <= 1) {
    return 0.0;
  }
  // Pairwise exchange: p-1 rounds; every round every rank sends one block,
  // so the node NIC carries ranks_per_node flows.
  const int rounds = p - 1;
  const int off_rounds =
      topo.nodes() <= 1
          ? 0
          : rounds * (topo.nodes() - 1) / std::max(1, topo.nodes());
  const int on_rounds = rounds - off_rounds;
  double t = static_cast<double>(on_rounds) *
             topo.intra_node_fabric().message_time(bytes_per_pair);
  if (off_rounds > 0) {
    t += static_cast<double>(off_rounds) *
         topo.inter_node_fabric().injection_time(bytes_per_pair,
                                                 topo.ranks_per_node()) *
         topo.contention_scale();
  }
  return t;
}

}  // namespace hetero::netsim
