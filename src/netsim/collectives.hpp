#pragma once

/// \file collectives.hpp
/// Analytic cost models for the MPI collectives heterolab uses, matched to
/// the classic algorithms (binomial trees, recursive doubling, ring). The
/// simulated MPI runtime charges these costs to rank clocks; the weak-scaling
/// projector uses the same formulas so direct and modeled runs agree.

#include <cstdint>

#include "netsim/topology.hpp"

namespace hetero::netsim {

/// Cost of a barrier among `ranks` processes (dissemination algorithm).
double barrier_time(const Topology& topo);

/// Binomial-tree broadcast of `bytes`.
double bcast_time(const Topology& topo, std::uint64_t bytes);

/// Recursive-doubling allreduce of `bytes` (latency-dominated regime used by
/// the solvers' dot products: bytes is typically 8).
double allreduce_time(const Topology& topo, std::uint64_t bytes);

/// Binomial-tree reduce.
double reduce_time(const Topology& topo, std::uint64_t bytes);

/// Gather of `bytes` per rank to the root (linear receive at root).
double gather_time(const Topology& topo, std::uint64_t bytes_per_rank);

/// Allgather (ring) of `bytes` per rank.
double allgather_time(const Topology& topo, std::uint64_t bytes_per_rank);

/// Personalized all-to-all of `bytes` per pair (pairwise exchange).
double alltoall_time(const Topology& topo, std::uint64_t bytes_per_pair);

}  // namespace hetero::netsim
