#pragma once

/// \file degradation.hpp
/// Network-degradation windows: virtual time is cut into fixed-width windows
/// and each window is independently degraded (all communication costs scaled
/// by `factor`) with probability `active_fraction`. The decision for a window
/// is a pure hash of (seed, window index), so two ranks — or two campaign
/// threads — asking about the same instant always agree, in any order.

#include <cstdint>

#include "support/hash.hpp"

namespace hetero::netsim {

struct DegradationSchedule {
  double window_s = 60.0;       ///< Width of one window in virtual seconds.
  double active_fraction = 0.0; ///< P(window is degraded), in [0, 1].
  double factor = 3.0;          ///< Cost multiplier inside a degraded window.
  std::uint64_t seed = 0;       ///< Decides *which* windows are degraded.

  bool enabled() const { return active_fraction > 0.0 && factor != 1.0; }

  /// Communication-cost multiplier at virtual time `t` (1.0 when healthy).
  double factor_at(double t) const {
    if (!enabled() || t < 0.0 || window_s <= 0.0) return 1.0;
    const auto window = static_cast<std::uint64_t>(t / window_s);
    const std::uint64_t h =
        hash_combine(hash_combine(seed, 0x6e657464ULL /* "netd" */), window);
    return hash_unit(h) < active_fraction ? factor : 1.0;
  }
};

}  // namespace hetero::netsim
