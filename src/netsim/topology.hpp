#pragma once

/// \file topology.hpp
/// Rank placement: which node hosts each rank, which placement group hosts
/// each node, and the resulting per-message transport choice.
///
/// Three transports are distinguished:
///   * same node            -> shared-memory fabric
///   * same placement group -> inter-node fabric
///   * different groups     -> inter-node fabric × (1 + cross_group_penalty)
///
/// The paper's EC2 experiment (Table II) found essentially *no* benefit from
/// a single placement group, so the ec2 default penalty is small; the
/// ablation bench sweeps it.

#include <cstdint>
#include <vector>

#include "netsim/fabric.hpp"

namespace hetero::netsim {

/// Declarative description of a machine assembly.
struct TopologySpec {
  int ranks = 1;
  int ranks_per_node = 1;
  /// Placement group of each node; empty means "all nodes in group 0".
  std::vector<int> node_group;
  /// Fractional latency/bandwidth penalty for traffic crossing groups.
  double cross_group_penalty = 0.0;
};

/// Immutable placement + transport model.
class Topology {
 public:
  Topology(TopologySpec spec, Fabric inter_node, Fabric intra_node);

  int ranks() const { return spec_.ranks; }
  int nodes() const { return node_count_; }
  int ranks_per_node() const { return spec_.ranks_per_node; }

  int node_of(int rank) const;
  int group_of(int node) const;
  bool same_node(int rank_a, int rank_b) const;
  bool same_group(int rank_a, int rank_b) const;

  const Fabric& inter_node_fabric() const { return inter_; }
  const Fabric& intra_node_fabric() const { return intra_; }
  double cross_group_penalty() const { return spec_.cross_group_penalty; }

  /// Fabric contention multiplier for off-node traffic: grows with the node
  /// count according to the inter-node fabric's oversubscription (see
  /// FabricParams::oversubscription). 1.0 for single-node jobs.
  double contention_scale() const;

  /// Time for one message of `bytes` from rank_a to rank_b, idle network.
  double message_time(int rank_a, int rank_b, std::uint64_t bytes) const;

  /// Time for a neighbour exchange in which every rank simultaneously sends
  /// `bytes_off_node` to off-node peers spread over `off_node_peers`
  /// messages, and `bytes_on_node` to on-node peers over `on_node_peers`
  /// messages. Captures the NIC-sharing contention of `ranks_per_node`
  /// ranks per node. Peer counts of zero skip that component.
  double exchange_time(std::uint64_t bytes_off_node, int off_node_peers,
                       std::uint64_t bytes_on_node, int on_node_peers,
                       double cross_group_fraction = 0.0) const;

  /// Convenience: uniform single-group topology.
  static Topology uniform(int ranks, int ranks_per_node, Fabric inter_node,
                          Fabric intra_node, double cross_group_penalty = 0.0);

 private:
  TopologySpec spec_;
  Fabric inter_;
  Fabric intra_;
  int node_count_ = 0;
};

}  // namespace hetero::netsim
