#include "netsim/topology.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace hetero::netsim {

Topology::Topology(TopologySpec spec, Fabric inter_node, Fabric intra_node)
    : spec_(std::move(spec)),
      inter_(std::move(inter_node)),
      intra_(std::move(intra_node)) {
  HETERO_REQUIRE(spec_.ranks >= 1, "topology requires >= 1 rank");
  HETERO_REQUIRE(spec_.ranks_per_node >= 1,
                 "topology requires >= 1 rank per node");
  HETERO_REQUIRE(spec_.cross_group_penalty >= 0.0,
                 "cross-group penalty must be >= 0");
  node_count_ = (spec_.ranks + spec_.ranks_per_node - 1) / spec_.ranks_per_node;
  if (spec_.node_group.empty()) {
    spec_.node_group.assign(static_cast<std::size_t>(node_count_), 0);
  }
  HETERO_REQUIRE(static_cast<int>(spec_.node_group.size()) == node_count_,
                 "node_group size must equal the node count");
}

int Topology::node_of(int rank) const {
  HETERO_REQUIRE(rank >= 0 && rank < spec_.ranks, "rank out of range");
  return rank / spec_.ranks_per_node;
}

int Topology::group_of(int node) const {
  HETERO_REQUIRE(node >= 0 && node < node_count_, "node out of range");
  return spec_.node_group[static_cast<std::size_t>(node)];
}

bool Topology::same_node(int rank_a, int rank_b) const {
  return node_of(rank_a) == node_of(rank_b);
}

bool Topology::same_group(int rank_a, int rank_b) const {
  return group_of(node_of(rank_a)) == group_of(node_of(rank_b));
}

double Topology::contention_scale() const {
  if (node_count_ <= 1) {
    return 1.0;
  }
  return 1.0 + inter_.params().oversubscription *
                   static_cast<double>(node_count_ - 1) / 32.0;
}

double Topology::message_time(int rank_a, int rank_b,
                              std::uint64_t bytes) const {
  if (rank_a == rank_b) {
    return 0.0;
  }
  if (same_node(rank_a, rank_b)) {
    return intra_.message_time(bytes);
  }
  double time = inter_.message_time(bytes) * contention_scale();
  if (!same_group(rank_a, rank_b)) {
    time *= 1.0 + spec_.cross_group_penalty;
  }
  return time;
}

double Topology::exchange_time(std::uint64_t bytes_off_node,
                               int off_node_peers,
                               std::uint64_t bytes_on_node, int on_node_peers,
                               double cross_group_fraction) const {
  HETERO_REQUIRE(off_node_peers >= 0 && on_node_peers >= 0,
                 "peer counts must be >= 0");
  HETERO_REQUIRE(cross_group_fraction >= 0.0 && cross_group_fraction <= 1.0,
                 "cross_group_fraction must be in [0,1]");
  double off = 0.0;
  if (off_node_peers > 0 && bytes_off_node > 0) {
    const std::uint64_t per_msg =
        bytes_off_node / static_cast<std::uint64_t>(off_node_peers);
    // Every rank on the node injects concurrently: flows on the shared NIC
    // is (ranks on node that talk off-node) × (messages each).
    const int flows = spec_.ranks_per_node * off_node_peers;
    off = inter_.injection_time(std::max<std::uint64_t>(per_msg, 1), flows);
    // Per-message latency for the sequence of distinct peers.
    off += inter_.params().latency_s * static_cast<double>(off_node_peers - 1);
    off *= contention_scale();
    off *= 1.0 + spec_.cross_group_penalty * cross_group_fraction;
  }
  double on = 0.0;
  if (on_node_peers > 0 && bytes_on_node > 0) {
    const std::uint64_t per_msg =
        bytes_on_node / static_cast<std::uint64_t>(on_node_peers);
    on = intra_.injection_time(std::max<std::uint64_t>(per_msg, 1),
                               on_node_peers);
  }
  // Off-node wire time dominates and overlaps with on-node copies only
  // partially; take the max plus a fraction of the smaller term.
  return std::max(off, on) + 0.25 * std::min(off, on);
}

Topology Topology::uniform(int ranks, int ranks_per_node, Fabric inter_node,
                           Fabric intra_node, double cross_group_penalty) {
  TopologySpec spec;
  spec.ranks = ranks;
  spec.ranks_per_node = ranks_per_node;
  spec.cross_group_penalty = cross_group_penalty;
  return Topology(std::move(spec), std::move(inter_node),
                  std::move(intra_node));
}

}  // namespace hetero::netsim
