#pragma once

/// \file fabric.hpp
/// Point-to-point interconnect performance models.
///
/// Each fabric is described by a small LogGP-style parameter set: one-way
/// small-message latency, sustained bandwidth, an eager/rendezvous protocol
/// switch (as in Open MPI), and a per-node injection limit that caps how fast
/// all ranks sharing one NIC can push data. The four builtin fabrics mirror
/// the paper's platforms: 1 GbE (puma, ellipse), 10 GbE (ec2), InfiniBand 4X
/// DDR (lagrange), plus the intra-node shared-memory transport.

#include <cstdint>
#include <string>

namespace hetero::netsim {

/// Parameter set for one transport.
struct FabricParams {
  std::string name;
  /// One-way latency for a small (eager) message, seconds.
  double latency_s = 0.0;
  /// Sustained point-to-point bandwidth, bytes/second.
  double bandwidth_bps = 0.0;
  /// Messages >= this many bytes use the rendezvous protocol.
  std::uint64_t eager_threshold_bytes = 0;
  /// Extra handshake cost paid once per rendezvous message, seconds.
  double rendezvous_extra_s = 0.0;
  /// Aggregate injection bandwidth of one node's NIC, bytes/second. All
  /// ranks on a node share it; 0 means "same as bandwidth_bps".
  double node_injection_bps = 0.0;
  /// Switch-fabric contention: effective off-node costs scale by
  /// 1 + oversubscription * (nodes - 1) / 32 (one 32-port switch tier).
  /// Commodity Ethernet of the era was heavily oversubscribed and TCP
  /// collectives suffered incast collapse; InfiniBand fat-trees were not.
  double oversubscription = 0.0;
};

/// Immutable point-to-point cost model for one fabric.
class Fabric {
 public:
  explicit Fabric(FabricParams params);

  const std::string& name() const { return params_.name; }
  const FabricParams& params() const { return params_; }

  /// Time for a single point-to-point message of `bytes` between two ranks
  /// with no competing traffic.
  double message_time(std::uint64_t bytes) const;

  /// Time for `flows` concurrent messages of `bytes` each leaving one node:
  /// per-message cost plus serialization on the node's injection bandwidth.
  double injection_time(std::uint64_t bytes, int flows) const;

  /// Effective bandwidth (bytes/s) observed by one large message.
  double effective_bandwidth(std::uint64_t bytes) const;

  // Builtin fabrics (parameters documented in fabric.cpp).
  static Fabric gigabit_ethernet();
  static Fabric ten_gigabit_ethernet();
  static Fabric infiniband_ddr_4x();
  static Fabric shared_memory();

 private:
  FabricParams params_;
};

}  // namespace hetero::netsim
