#pragma once

/// \file graph.hpp
/// Compressed adjacency graphs and the element dual graph (tets adjacent
/// through a shared face) — the structure the paper hands to ParMETIS for
/// load-balanced mesh splitting.

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/tet_mesh.hpp"

namespace hetero::partition {

/// CSR-style undirected graph.
struct Graph {
  std::vector<std::int64_t> xadj;   // size n+1
  std::vector<int> adjncy;          // neighbour lists

  std::size_t vertex_count() const {
    return xadj.empty() ? 0 : xadj.size() - 1;
  }
  std::size_t edge_count() const { return adjncy.size() / 2; }

  /// Neighbours of vertex v.
  std::span<const int> neighbours(int v) const {
    const auto b = static_cast<std::size_t>(xadj[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(xadj[static_cast<std::size_t>(v) + 1]);
    return {adjncy.data() + b, e - b};
  }

  /// Throws if xadj/adjncy are inconsistent or adjacency is not symmetric.
  void validate() const;
};

/// Dual graph of a tetrahedral mesh: one graph vertex per tet, edges between
/// tets sharing a triangular face.
Graph build_dual_graph(const mesh::TetMesh& mesh);

}  // namespace hetero::partition
