#include "partition/graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/error.hpp"

namespace hetero::partition {

void Graph::validate() const {
  HETERO_REQUIRE(!xadj.empty() && xadj.front() == 0 &&
                     xadj.back() == static_cast<std::int64_t>(adjncy.size()),
                 "graph xadj is inconsistent with adjncy");
  const int n = static_cast<int>(vertex_count());
  for (std::size_t v = 0; v + 1 < xadj.size(); ++v) {
    HETERO_REQUIRE(xadj[v] <= xadj[v + 1], "graph xadj must be monotone");
  }
  for (int u = 0; u < n; ++u) {
    for (int v : neighbours(u)) {
      HETERO_REQUIRE(v >= 0 && v < n, "graph neighbour out of range");
      HETERO_REQUIRE(v != u, "graph has a self loop");
      const auto back = neighbours(v);
      HETERO_REQUIRE(std::find(back.begin(), back.end(), u) != back.end(),
                     "graph adjacency is not symmetric");
    }
  }
}

Graph build_dual_graph(const mesh::TetMesh& mesh) {
  // Face key: sorted vertex triple. Each interior face is shared by exactly
  // two tets; boundary faces by one.
  struct FaceHash {
    std::size_t operator()(const std::array<int, 3>& f) const {
      std::size_t h = 1469598103934665603ULL;
      for (int v : f) {
        h ^= static_cast<std::size_t>(v);
        h *= 1099511628211ULL;
      }
      return h;
    }
  };
  std::unordered_map<std::array<int, 3>, int, FaceHash> first_owner;
  first_owner.reserve(mesh.tet_count() * 2);

  const std::array<std::array<int, 3>, 4> local_faces = {{
      {1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2},
  }};
  std::vector<std::vector<int>> adj(mesh.tet_count());
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    const auto& tet = mesh.tet(t);
    for (const auto& lf : local_faces) {
      std::array<int, 3> key{tet[static_cast<std::size_t>(lf[0])],
                             tet[static_cast<std::size_t>(lf[1])],
                             tet[static_cast<std::size_t>(lf[2])]};
      std::sort(key.begin(), key.end());
      auto [it, inserted] = first_owner.try_emplace(key, static_cast<int>(t));
      if (!inserted) {
        const int other = it->second;
        HETERO_REQUIRE(other != static_cast<int>(t),
                       "mesh has a duplicated face within one tet");
        adj[t].push_back(other);
        adj[static_cast<std::size_t>(other)].push_back(static_cast<int>(t));
      }
    }
  }

  Graph g;
  g.xadj.resize(mesh.tet_count() + 1, 0);
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    g.xadj[t + 1] = g.xadj[t] + static_cast<std::int64_t>(adj[t].size());
  }
  g.adjncy.reserve(static_cast<std::size_t>(g.xadj.back()));
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    g.adjncy.insert(g.adjncy.end(), list.begin(), list.end());
  }
  return g;
}

}  // namespace hetero::partition
