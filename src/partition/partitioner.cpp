#include "partition/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "support/error.hpp"

namespace hetero::partition {

namespace {

mesh::Vec3 centroid(const mesh::TetMesh& mesh, std::size_t t) {
  const auto& tet = mesh.tet(t);
  mesh::Vec3 c;
  for (int v : tet) {
    c = c + mesh.vertex(v);
  }
  return c * 0.25;
}

void validate_weights(int parts, std::span<const double> weights,
                      const char* who) {
  HETERO_REQUIRE(weights.size() == static_cast<std::size_t>(parts),
                 std::string(who) + " needs one weight per part");
  for (const double w : weights) {
    HETERO_REQUIRE(w > 0.0,
                   std::string(who) + " weights must be strictly positive");
  }
}

/// Recursively assigns `count` parts starting at `first_part` to the element
/// index range [begin, end) of `order`, splitting along the longest axis of
/// the current bounding box. `weights`, when non-null, points at the
/// per-part capacity weights (indexed by absolute part id): each bisection
/// then splits the elements by the weight mass on either side instead of
/// the part count. An empty range is legal (the covered parts go empty).
void rcb_recurse(const mesh::TetMesh& mesh,
                 const std::vector<mesh::Vec3>& centroids,
                 std::vector<int>& order, std::size_t begin, std::size_t end,
                 int first_part, int count, const double* weights,
                 std::vector<int>& part) {
  if (count == 1) {
    for (std::size_t i = begin; i < end; ++i) {
      part[static_cast<std::size_t>(order[i])] = first_part;
    }
    return;
  }
  const int left_parts = count / 2;
  const int right_parts = count - left_parts;
  if (begin == end) {
    // Nothing left to split: every covered part stays empty. Recursing
    // further would read centroids of a nonexistent element.
    return;
  }
  // Bounding box of the subset.
  mesh::Vec3 lo = centroids[static_cast<std::size_t>(order[begin])];
  mesh::Vec3 hi = lo;
  for (std::size_t i = begin; i < end; ++i) {
    const auto& c = centroids[static_cast<std::size_t>(order[i])];
    lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
    hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
  }
  const mesh::Vec3 extent = hi - lo;
  int axis = 0;
  if (extent.y > extent.x && extent.y >= extent.z) {
    axis = 1;
  } else if (extent.z > extent.x && extent.z > extent.y) {
    axis = 2;
  }
  auto key = [&](int e) {
    const auto& c = centroids[static_cast<std::size_t>(e)];
    return axis == 0 ? c.x : axis == 1 ? c.y : c.z;
  };
  // Split elements across the cut: proportionally to the part counts
  // (uniform), or to the weight mass on either side (weighted).
  const std::size_t n = end - begin;
  std::size_t left_n;
  if (weights == nullptr) {
    left_n = n * static_cast<std::size_t>(left_parts) /
             static_cast<std::size_t>(count);
  } else {
    double wl = 0.0;
    double wr = 0.0;
    for (int p = 0; p < left_parts; ++p) {
      wl += weights[first_part + p];
    }
    for (int p = left_parts; p < count; ++p) {
      wr += weights[first_part + p];
    }
    const auto want = std::llround(static_cast<double>(n) * wl / (wl + wr));
    left_n = static_cast<std::size_t>(
        std::clamp<long long>(want, 0, static_cast<long long>(n)));
  }
  std::nth_element(order.begin() + static_cast<std::ptrdiff_t>(begin),
                   order.begin() + static_cast<std::ptrdiff_t>(begin + left_n),
                   order.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](int a, int b) {
                     const double ka = key(a);
                     const double kb = key(b);
                     return ka < kb || (ka == kb && a < b);
                   });
  rcb_recurse(mesh, centroids, order, begin, begin + left_n, first_part,
              left_parts, weights, part);
  rcb_recurse(mesh, centroids, order, begin + left_n, end,
              first_part + left_parts, right_parts, weights, part);
}

std::vector<int> rcb_impl(const mesh::TetMesh& mesh, int parts,
                          const double* weights) {
  HETERO_REQUIRE(parts >= 1, "partition_rcb requires parts >= 1");
  std::vector<mesh::Vec3> centroids(mesh.tet_count());
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    centroids[t] = centroid(mesh, t);
  }
  std::vector<int> order(mesh.tet_count());
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> part(mesh.tet_count(), -1);
  rcb_recurse(mesh, centroids, order, 0, order.size(), 0, parts, weights,
              part);
  return part;
}

std::vector<int> greedy_impl(const Graph& graph, int parts,
                             const double* weights) {
  HETERO_REQUIRE(parts >= 1, "partition_greedy requires parts >= 1");
  const int n = static_cast<int>(graph.vertex_count());
  std::vector<int> part(static_cast<std::size_t>(n), -1);
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  double weight_total = 0.0;
  if (weights != nullptr) {
    for (int p = 0; p < parts; ++p) {
      weight_total += weights[p];
    }
  }

  int assigned = 0;
  int seed = 0;  // first seed: vertex 0; later seeds: farthest unassigned
  double weight_left = weight_total;
  for (int p = 0; p < parts; ++p) {
    if (assigned == n) {
      // Every vertex has a part; the remaining parts stay empty. (Without
      // this guard the seed search below would index one past the end —
      // the parts > n out-of-bounds write this sweep fixed.)
      break;
    }
    const std::size_t remaining = static_cast<std::size_t>(n - assigned);
    std::size_t target;
    if (weights == nullptr) {
      const auto remaining_parts = static_cast<std::size_t>(parts - p);
      target = (remaining + remaining_parts - 1) / remaining_parts;
    } else {
      target = static_cast<std::size_t>(std::clamp<long long>(
          std::llround(static_cast<double>(remaining) * weights[p] /
                       weight_left),
          1, static_cast<long long>(remaining)));
      weight_left -= weights[p];
    }
    // Grow part p from `seed` by BFS over unassigned vertices.
    std::deque<int> queue;
    if (part[static_cast<std::size_t>(seed)] != -1) {
      // Seed got swallowed; find any unassigned vertex.
      seed = static_cast<int>(std::find(part.begin(), part.end(), -1) -
                              part.begin());
    }
    queue.push_back(seed);
    part[static_cast<std::size_t>(seed)] = p;
    ++assigned;
    std::size_t size = 1;
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<std::size_t>(seed)] = 0;
    int last_visited = seed;
    while (size < target && assigned < n) {
      if (queue.empty()) {
        // The unassigned region is disconnected from this part's frontier;
        // restart the BFS from any unassigned vertex so no vertex is left
        // without a part.
        const int fresh = static_cast<int>(
            std::find(part.begin(), part.end(), -1) - part.begin());
        HETERO_CHECK(fresh < n);
        part[static_cast<std::size_t>(fresh)] = p;
        dist[static_cast<std::size_t>(fresh)] = 0;
        queue.push_back(fresh);
        last_visited = fresh;
        ++assigned;
        ++size;
        continue;
      }
      const int u = queue.front();
      queue.pop_front();
      for (int v : graph.neighbours(u)) {
        if (part[static_cast<std::size_t>(v)] == -1) {
          part[static_cast<std::size_t>(v)] = p;
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          last_visited = v;
          ++assigned;
          ++size;
          queue.push_back(v);
          if (size >= target) {
            break;
          }
        }
      }
    }
    // Next seed: a vertex adjacent to the frontier but unassigned, ideally
    // far from this part — use the last visited vertex's unassigned
    // neighbour, else scan.
    seed = -1;
    for (int v : graph.neighbours(last_visited)) {
      if (part[static_cast<std::size_t>(v)] == -1) {
        seed = v;
        break;
      }
    }
    if (seed == -1) {
      const auto it = std::find(part.begin(), part.end(), -1);
      seed = it == part.end() ? 0 : static_cast<int>(it - part.begin());
    }
  }

  // Safety net: any leftover vertex joins the last part.
  for (auto& pv : part) {
    if (pv == -1) {
      pv = parts - 1;
      ++assigned;
    }
  }

  // One boundary-refinement sweep: move a vertex to the neighbouring part
  // where it has strictly more neighbours, if that does not overfill the
  // destination's (weighted) capacity.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(parts), 0);
  for (int v = 0; v < n; ++v) {
    ++sizes[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])];
  }
  std::vector<std::size_t> cap(static_cast<std::size_t>(parts), 0);
  for (int p = 0; p < parts; ++p) {
    const double share =
        weights == nullptr
            ? static_cast<double>(n) / static_cast<double>(parts)
            : static_cast<double>(n) * weights[p] / weight_total;
    cap[static_cast<std::size_t>(p)] =
        static_cast<std::size_t>(std::ceil(share)) + 1;
  }
  std::vector<int> gain(static_cast<std::size_t>(parts), 0);
  for (int v = 0; v < n; ++v) {
    const int pv = part[static_cast<std::size_t>(v)];
    std::fill(gain.begin(), gain.end(), 0);
    for (int u : graph.neighbours(v)) {
      ++gain[static_cast<std::size_t>(part[static_cast<std::size_t>(u)])];
    }
    int best = pv;
    for (int p = 0; p < parts; ++p) {
      if (p != pv && gain[static_cast<std::size_t>(p)] >
                         gain[static_cast<std::size_t>(best)] &&
          sizes[static_cast<std::size_t>(p)] + 1 <=
              cap[static_cast<std::size_t>(p)] &&
          sizes[static_cast<std::size_t>(pv)] > 1) {
        best = p;
      }
    }
    if (best != pv) {
      part[static_cast<std::size_t>(v)] = best;
      --sizes[static_cast<std::size_t>(pv)];
      ++sizes[static_cast<std::size_t>(best)];
    }
  }
  return part;
}

PartitionMetrics evaluate_impl(const Graph& graph,
                               const std::vector<int>& part, int parts,
                               const double* weights) {
  HETERO_REQUIRE(part.size() == graph.vertex_count(),
                 "partition size must match graph");
  HETERO_REQUIRE(parts >= 1, "parts must be >= 1");
  PartitionMetrics m;
  m.parts = parts;
  std::vector<std::size_t> sizes(static_cast<std::size_t>(parts), 0);
  for (int p : part) {
    HETERO_REQUIRE(p >= 0 && p < parts, "part id out of range");
    ++sizes[static_cast<std::size_t>(p)];
  }
  m.min_part_size = *std::min_element(sizes.begin(), sizes.end());
  m.max_part_size = *std::max_element(sizes.begin(), sizes.end());
  const auto n = static_cast<double>(graph.vertex_count());
  if (graph.vertex_count() == 0) {
    // Nothing to balance: an empty input is trivially perfect (the old
    // formula divided 0 by 0 here and reported NaN).
    m.imbalance = 1.0;
    m.weighted_imbalance = 1.0;
  } else {
    m.imbalance =
        static_cast<double>(m.max_part_size) / (n / static_cast<double>(parts));
    if (weights == nullptr) {
      m.weighted_imbalance = m.imbalance;
    } else {
      double weight_total = 0.0;
      for (int p = 0; p < parts; ++p) {
        weight_total += weights[p];
      }
      double worst = 0.0;
      for (int p = 0; p < parts; ++p) {
        const double ideal = n * weights[p] / weight_total;
        worst = std::max(
            worst, static_cast<double>(sizes[static_cast<std::size_t>(p)]) /
                       ideal);
      }
      m.weighted_imbalance = worst;
    }
  }
  std::size_t cut = 0;
  for (int u = 0; u < static_cast<int>(graph.vertex_count()); ++u) {
    for (int v : graph.neighbours(u)) {
      if (u < v && part[static_cast<std::size_t>(u)] !=
                       part[static_cast<std::size_t>(v)]) {
        ++cut;
      }
    }
  }
  m.edge_cut = cut;
  return m;
}

}  // namespace

std::vector<int> partition_rcb(const mesh::TetMesh& mesh, int parts) {
  return rcb_impl(mesh, parts, nullptr);
}

std::vector<int> partition_rcb(const mesh::TetMesh& mesh, int parts,
                               std::span<const double> weights) {
  HETERO_REQUIRE(parts >= 1, "partition_rcb requires parts >= 1");
  validate_weights(parts, weights, "partition_rcb");
  return rcb_impl(mesh, parts, weights.data());
}

std::vector<int> partition_greedy(const Graph& graph, int parts) {
  return greedy_impl(graph, parts, nullptr);
}

std::vector<int> partition_greedy(const Graph& graph, int parts,
                                  std::span<const double> weights) {
  HETERO_REQUIRE(parts >= 1, "partition_greedy requires parts >= 1");
  validate_weights(parts, weights, "partition_greedy");
  return greedy_impl(graph, parts, weights.data());
}

mesh::TetMesh extract_submesh(const mesh::TetMesh& global,
                              std::span<const int> part, int rank) {
  HETERO_REQUIRE(part.size() == global.tet_count(),
                 "extract_submesh: partition size mismatch");
  // Map surviving global-local vertices to compact local indices.
  std::vector<int> local_of(global.vertex_count(), -1);
  std::vector<mesh::Vec3> vertices;
  std::vector<mesh::GlobalId> gids;
  std::vector<std::array<int, 4>> tets;
  for (std::size_t t = 0; t < global.tet_count(); ++t) {
    if (part[t] != rank) {
      continue;
    }
    std::array<int, 4> tet{};
    for (int i = 0; i < 4; ++i) {
      const int gv = global.tet(t)[static_cast<std::size_t>(i)];
      int& lv = local_of[static_cast<std::size_t>(gv)];
      if (lv == -1) {
        lv = static_cast<int>(vertices.size());
        vertices.push_back(global.vertex(gv));
        gids.push_back(global.vertex_gid(gv));
      }
      tet[static_cast<std::size_t>(i)] = lv;
    }
    tets.push_back(tet);
  }
  // A rank may legitimately own nothing (parts > elements, or extreme
  // weights); it gets a valid empty mesh, not UB.
  mesh::TetMesh sub(std::move(vertices), std::move(tets));
  sub.set_vertex_gids(std::move(gids));
  // Keep global boundary faces fully contained in the local vertex set.
  std::vector<mesh::BoundaryFace> faces;
  for (const auto& face : global.boundary_faces()) {
    std::array<int, 3> lf{};
    bool keep = true;
    for (int i = 0; i < 3 && keep; ++i) {
      const int lv = local_of[static_cast<std::size_t>(
          face.vertices[static_cast<std::size_t>(i)])];
      if (lv == -1) {
        keep = false;
      } else {
        lf[static_cast<std::size_t>(i)] = lv;
      }
    }
    if (keep) {
      faces.push_back({lf, face.marker});
    }
  }
  sub.set_boundary_faces(std::move(faces));
  return sub;
}

PartitionMetrics evaluate_partition(const Graph& graph,
                                    const std::vector<int>& part, int parts) {
  return evaluate_impl(graph, part, parts, nullptr);
}

PartitionMetrics evaluate_partition(const Graph& graph,
                                    const std::vector<int>& part, int parts,
                                    std::span<const double> weights) {
  HETERO_REQUIRE(parts >= 1, "parts must be >= 1");
  validate_weights(parts, weights, "evaluate_partition");
  return evaluate_impl(graph, part, parts, weights.data());
}

}  // namespace hetero::partition
