#pragma once

/// \file partitioner.hpp
/// Mesh/graph partitioners standing in for ParMETIS: recursive coordinate
/// bisection (geometric) and greedy graph growing with boundary refinement
/// (combinatorial), plus the quality metrics the paper cares about — load
/// balance (elements per process) and interface size (communication volume).
///
/// Both partitioners also come in *capacity-weighted* variants: part p
/// targets a share proportional to `weights[p]`, the mechanism the dynamic
/// load balancer (lb::LoadBalancer) uses to hand slow ranks fewer elements
/// once per-rank speed skew has been measured.
///
/// Degenerate inputs are well-defined, never UB: `parts` may exceed the
/// element count (the surplus parts receive zero elements), a zero-element
/// input yields an all-empty partition, and `extract_submesh` on a rank
/// that owns nothing returns an empty mesh.

#include <span>
#include <vector>

#include "mesh/tet_mesh.hpp"
#include "partition/graph.hpp"

namespace hetero::partition {

/// Load balance and communication metrics of an element partition.
struct PartitionMetrics {
  int parts = 0;
  std::size_t min_part_size = 0;
  std::size_t max_part_size = 0;
  /// max part size / ideal part size; 1.0 is perfect. Defined as 1.0 for an
  /// empty input (nothing to balance).
  double imbalance = 0.0;
  /// max over parts of size_p / (n * w_p / sum(w)): the weighted analogue,
  /// 1.0 when every part holds exactly its capacity share. Equals
  /// `imbalance` when the weights are uniform (or none were given).
  double weighted_imbalance = 0.0;
  /// Dual-graph edges crossing part boundaries (proportional to halo data).
  std::size_t edge_cut = 0;
};

/// Recursive coordinate bisection over element centroids. Deterministic.
/// Returns the part id of every element; parts need not be a power of two.
std::vector<int> partition_rcb(const mesh::TetMesh& mesh, int parts);

/// Capacity-weighted RCB: each bisection splits the elements in proportion
/// to the summed weights of the parts on either side, so part p ends up
/// with ~ n * weights[p] / sum(weights) elements. Weights must be strictly
/// positive and one per part.
std::vector<int> partition_rcb(const mesh::TetMesh& mesh, int parts,
                               std::span<const double> weights);

/// Greedy graph growing: seeds part after part from the farthest unassigned
/// vertex, grows by BFS to the target size, then one pass of boundary
/// refinement reduces the edge cut without breaking balance. Deterministic.
std::vector<int> partition_greedy(const Graph& graph, int parts);

/// Capacity-weighted greedy growing: part p grows to a target of
/// ~ n * weights[p] / sum(weights) vertices, and the refinement pass
/// respects per-part weighted capacity. Weights must be strictly positive
/// and one per part.
std::vector<int> partition_greedy(const Graph& graph, int parts,
                                  std::span<const double> weights);

/// Evaluates a partition against its dual graph.
PartitionMetrics evaluate_partition(const Graph& graph,
                                    const std::vector<int>& part, int parts);

/// Weighted variant: also fills `weighted_imbalance` against the capacity
/// shares `weights` (strictly positive, one per part).
PartitionMetrics evaluate_partition(const Graph& graph,
                                    const std::vector<int>& part, int parts,
                                    std::span<const double> weights);

/// Extracts rank `rank`'s submesh from a partitioned global mesh: elements
/// with part[t] == rank, vertices compacted to local indices, global vertex
/// ids preserved (so distributed FEM dof ids stay consistent across ranks),
/// and global boundary faces whose vertices all survive locally. This is
/// the hand-off from the ParMETIS-style partitioners to the solvers —
/// step (i) of the paper's pipeline for unstructured decompositions. A rank
/// that owns no elements receives a valid empty mesh.
mesh::TetMesh extract_submesh(const mesh::TetMesh& global,
                              std::span<const int> part, int rank);

}  // namespace hetero::partition
