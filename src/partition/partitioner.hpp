#pragma once

/// \file partitioner.hpp
/// Mesh/graph partitioners standing in for ParMETIS: recursive coordinate
/// bisection (geometric) and greedy graph growing with boundary refinement
/// (combinatorial), plus the quality metrics the paper cares about — load
/// balance (elements per process) and interface size (communication volume).

#include <vector>

#include "mesh/tet_mesh.hpp"
#include "partition/graph.hpp"

namespace hetero::partition {

/// Load balance and communication metrics of an element partition.
struct PartitionMetrics {
  int parts = 0;
  std::size_t min_part_size = 0;
  std::size_t max_part_size = 0;
  /// max part size / ideal part size; 1.0 is perfect.
  double imbalance = 0.0;
  /// Dual-graph edges crossing part boundaries (proportional to halo data).
  std::size_t edge_cut = 0;
};

/// Recursive coordinate bisection over element centroids. Deterministic.
/// Returns the part id of every element; parts need not be a power of two.
std::vector<int> partition_rcb(const mesh::TetMesh& mesh, int parts);

/// Greedy graph growing: seeds part after part from the farthest unassigned
/// vertex, grows by BFS to the target size, then one pass of boundary
/// refinement reduces the edge cut without breaking balance. Deterministic.
std::vector<int> partition_greedy(const Graph& graph, int parts);

/// Evaluates a partition against its dual graph.
PartitionMetrics evaluate_partition(const Graph& graph,
                                    const std::vector<int>& part, int parts);

/// Extracts rank `rank`'s submesh from a partitioned global mesh: elements
/// with part[t] == rank, vertices compacted to local indices, global vertex
/// ids preserved (so distributed FEM dof ids stay consistent across ranks),
/// and global boundary faces whose vertices all survive locally. This is
/// the hand-off from the ParMETIS-style partitioners to the solvers —
/// step (i) of the paper's pipeline for unstructured decompositions.
mesh::TetMesh extract_submesh(const mesh::TetMesh& global,
                              std::span<const int> part, int rank);

}  // namespace hetero::partition
