#pragma once

/// \file ec2_service.hpp
/// The IaaS service simulator: instance launch (on-demand and spot),
/// placement groups, the security-group gotcha of §VI-D, whole-instance
/// billing, and assembly of launched instances into a netsim topology.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloud/instance_types.hpp"
#include "cloud/spot_market.hpp"
#include "netsim/topology.hpp"
#include "resil/fault_plan.hpp"
#include "support/rng.hpp"

namespace hetero::cloud {

struct Instance {
  int id = 0;
  std::string type;
  int placement_group = 0;
  bool spot = false;
  /// Price this instance accrues per hour (spot: market price at launch).
  double hourly_usd = 0.0;
  /// Spot bid this instance was acquired under (0 for on-demand). When the
  /// market price rises above it the service reclaims the instance.
  double bid_usd = 0.0;
  double launched_at_s = 0.0;
  /// Intranet address assigned by the service (for the mpiexec hosts file).
  std::string private_ip;
};

/// Result of a launch request.
struct Launch {
  std::vector<Instance> instances;
  /// Boot/setup delay until the instances are usable.
  double ready_after_s = 0.0;
};

class Ec2Service {
 public:
  explicit Ec2Service(std::uint64_t seed);

  /// Simulation clock (seconds since service creation).
  double now_s() const { return clock_s_; }

  /// Advances the clock. At every hour boundary crossed, spot instances
  /// whose bid is below the hour's market price are *reclaimed* (terminated
  /// by the vendor, billing stopped); the reclaimed instances are returned
  /// so the caller can react — the unpredictability the paper warns about.
  /// Hours the fault plan marks as a reclaim storm take *every* spot
  /// instance, however high the bid.
  std::vector<Instance> advance(double seconds);

  /// Installs injected reclaim storms. The plan's hour schedule is a pure
  /// hash of its seed, so campaigns replay identically at any parallelism.
  void set_fault_plan(resil::FaultPlan plan) { fault_plan_ = std::move(plan); }

  /// Placement groups (cluster-compute only).
  int create_placement_group(const std::string& name);

  /// The paper had to open intranet TCP ports before MPI ranks could talk.
  void authorize_intranet_tcp() { intranet_tcp_open_ = true; }
  bool intranet_tcp_open() const { return intranet_tcp_open_; }

  /// On-demand launch: always fulfilled (the vendor's pitch), priced at the
  /// type's on-demand rate.
  Launch request_on_demand(const std::string& type_name, int count,
                           std::optional<int> placement_group = std::nullopt);

  /// Spot launch at `bid` USD/hour: possibly partially fulfilled (or not at
  /// all); fulfilled instances are spread over `groups` round-robin.
  Launch request_spot(const std::string& type_name, int count, double bid,
                      const std::vector<int>& groups);

  void terminate(const std::vector<Instance>& instances);

  /// Amazon-style billing: every started instance-hour is charged in full.
  double billed_usd() const;
  /// Exact pro-rated accrual (for per-iteration cost analysis).
  double accrued_usd() const;

  /// Running instances.
  const std::vector<Instance>& fleet() const { return fleet_; }

  SpotMarket& market() { return market_; }

  /// Builds the interconnect topology of an assembly: `ranks` MPI processes
  /// packed onto the instances in order, 10GbE between instances, shared
  /// memory within, and `cross_group_penalty` between placement groups.
  /// Requires the security group to be open (MPI cannot communicate
  /// otherwise — the gotcha is an error here, as it was in practice).
  netsim::Topology assembly_topology(const std::vector<Instance>& instances,
                                     int ranks,
                                     double cross_group_penalty) const;

 private:
  struct Charge {
    int instance_id = 0;
    double hourly_usd = 0.0;
    double start_s = 0.0;
    double end_s = -1.0;  // -1: still running
  };

  Instance make_instance(const InstanceType& type, bool spot, double price,
                         double bid, int group);
  void close_charge(int instance_id);

  std::uint64_t seed_;
  Rng rng_;
  SpotMarket market_;
  resil::FaultPlan fault_plan_;
  double clock_s_ = 0.0;
  int next_instance_id_ = 1;
  int next_group_id_ = 0;
  bool intranet_tcp_open_ = false;
  std::vector<Instance> fleet_;
  std::vector<Charge> charges_;
};

}  // namespace hetero::cloud
