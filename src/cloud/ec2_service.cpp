#include "cloud/ec2_service.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hetero::cloud {

namespace {

struct CloudMetrics {
  obs::Counter& instances_launched =
      obs::metrics().counter("cloud.instances_launched");
  obs::Counter& spot_reclaims = obs::metrics().counter("cloud.spot_reclaims");
  obs::Gauge& billed_usd = obs::metrics().gauge("cloud.billed_usd");
};

CloudMetrics& cloud_metrics() {
  static CloudMetrics metrics;
  return metrics;
}

}  // namespace

Ec2Service::Ec2Service(std::uint64_t seed)
    : seed_(seed), rng_(seed), market_(seed ^ 0x5107B007ULL) {}

std::vector<Instance> Ec2Service::advance(double seconds) {
  HETERO_REQUIRE(seconds >= 0.0, "the service clock cannot run backwards");
  const auto hour_before = static_cast<std::int64_t>(clock_s_ / 3600.0);
  clock_s_ += seconds;
  const auto hour_after = static_cast<std::int64_t>(clock_s_ / 3600.0);

  std::vector<Instance> reclaimed;
  for (std::int64_t h = hour_before + 1; h <= hour_after; ++h) {
    const bool storm = fault_plan_.reclaim_storm(h);
    if (storm) {
      obs::metrics().counter("resil.reclaim_storms").increment();
      obs::trace_instant("reclaim_storm", "resil",
                         static_cast<double>(h) * 3600.0);
    }
    for (std::size_t i = 0; i < fleet_.size();) {
      const Instance& inst = fleet_[i];
      if (inst.spot &&
          (storm ||
           inst.bid_usd < market_.price(instance_type(inst.type), h))) {
        reclaimed.push_back(inst);
        close_charge(inst.id);
        fleet_.erase(fleet_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  if (!reclaimed.empty()) {
    // The unpredictability the paper warns about: surface it on the trace
    // timeline (service wall clock) and in the metric totals.
    cloud_metrics().spot_reclaims.add(static_cast<double>(reclaimed.size()));
    obs::trace_instant("spot_reclaim", "cloud", clock_s_, "instances",
                       static_cast<double>(reclaimed.size()));
  }
  cloud_metrics().billed_usd.set(billed_usd());
  return reclaimed;
}

void Ec2Service::close_charge(int instance_id) {
  for (auto& charge : charges_) {
    if (charge.instance_id == instance_id && charge.end_s < 0.0) {
      charge.end_s = clock_s_;
      return;
    }
  }
  throw Error("no open charge for instance " + std::to_string(instance_id));
}

int Ec2Service::create_placement_group(const std::string& name) {
  HETERO_REQUIRE(!name.empty(), "placement group needs a name");
  return next_group_id_++;
}

Instance Ec2Service::make_instance(const InstanceType& type, bool spot,
                                   double price, double bid, int group) {
  Instance inst;
  inst.id = next_instance_id_++;
  inst.type = type.name;
  inst.placement_group = group;
  inst.spot = spot;
  inst.hourly_usd = price;
  inst.bid_usd = bid;
  inst.launched_at_s = clock_s_;
  inst.private_ip = "10.0." + std::to_string(inst.id / 256) + "." +
                    std::to_string(inst.id % 256);
  charges_.push_back({inst.id, price, clock_s_, -1.0});
  cloud_metrics().instances_launched.increment();
  return inst;
}

Launch Ec2Service::request_on_demand(const std::string& type_name, int count,
                                     std::optional<int> placement_group) {
  const InstanceType& type = instance_type(type_name);
  HETERO_REQUIRE(count >= 1, "request at least one instance");
  HETERO_REQUIRE(!placement_group || type.cluster_compute,
                 "placement groups require a Cluster Compute type");
  HETERO_REQUIRE(!placement_group || *placement_group < next_group_id_,
                 "placement group does not exist");
  Launch launch;
  for (int i = 0; i < count; ++i) {
    launch.instances.push_back(make_instance(type, false,
                                             type.on_demand_hourly_usd, 0.0,
                                             placement_group.value_or(0)));
  }
  fleet_.insert(fleet_.end(), launch.instances.begin(),
                launch.instances.end());
  // Concurrent boot: one image start, mild size dependence.
  launch.ready_after_s = 120.0 + 20.0 * std::log2(1.0 + count) +
                         rng_.uniform(0.0, 30.0);
  return launch;
}

Launch Ec2Service::request_spot(const std::string& type_name, int count,
                                double bid, const std::vector<int>& groups) {
  const InstanceType& type = instance_type(type_name);
  HETERO_REQUIRE(count >= 1, "request at least one instance");
  HETERO_REQUIRE(!groups.empty(), "spot request needs target groups");
  for (int g : groups) {
    HETERO_REQUIRE(g < next_group_id_, "placement group does not exist");
  }
  const auto hour = static_cast<std::int64_t>(clock_s_ / 3600.0);
  const int granted = market_.fulfill(type, bid, count, hour);
  const double price = market_.price(type, hour);
  Launch launch;
  for (int i = 0; i < granted; ++i) {
    launch.instances.push_back(make_instance(
        type, true, price, bid,
        groups[static_cast<std::size_t>(i) % groups.size()]));
  }
  fleet_.insert(fleet_.end(), launch.instances.begin(),
                launch.instances.end());
  // Spot requests take longer: the market has to clear first.
  launch.ready_after_s =
      240.0 + 40.0 * std::log2(1.0 + std::max(1, granted)) +
      rng_.uniform(0.0, 120.0);
  return launch;
}

void Ec2Service::terminate(const std::vector<Instance>& instances) {
  for (const auto& inst : instances) {
    const auto it = std::find_if(
        fleet_.begin(), fleet_.end(),
        [&](const Instance& f) { return f.id == inst.id; });
    HETERO_REQUIRE(it != fleet_.end(),
                   "terminating an instance that is not running");
    close_charge(it->id);
    fleet_.erase(it);
  }
}

double Ec2Service::billed_usd() const {
  double total = 0.0;
  for (const auto& charge : charges_) {
    const double end = charge.end_s < 0.0 ? clock_s_ : charge.end_s;
    const double hours = std::max(0.0, end - charge.start_s) / 3600.0;
    total += std::ceil(std::max(hours, 1e-9)) * charge.hourly_usd;
  }
  return total;
}

double Ec2Service::accrued_usd() const {
  double total = 0.0;
  for (const auto& charge : charges_) {
    const double end = charge.end_s < 0.0 ? clock_s_ : charge.end_s;
    total += (std::max(0.0, end - charge.start_s) / 3600.0) *
             charge.hourly_usd;
  }
  return total;
}

netsim::Topology Ec2Service::assembly_topology(
    const std::vector<Instance>& instances, int ranks,
    double cross_group_penalty) const {
  HETERO_REQUIRE(!instances.empty(), "assembly needs instances");
  HETERO_REQUIRE(intranet_tcp_open_,
                 "security group blocks MPI: call authorize_intranet_tcp() "
                 "first (the paper hit exactly this)");
  const InstanceType& type = instance_type(instances.front().type);
  HETERO_REQUIRE(ranks <= static_cast<int>(instances.size()) * type.cores,
                 "not enough cores across the assembly");
  netsim::TopologySpec spec;
  spec.ranks = ranks;
  spec.ranks_per_node = type.cores;
  spec.cross_group_penalty = cross_group_penalty;
  const int nodes_needed = (ranks + type.cores - 1) / type.cores;
  spec.node_group.reserve(static_cast<std::size_t>(nodes_needed));
  for (int n = 0; n < nodes_needed; ++n) {
    spec.node_group.push_back(
        instances[static_cast<std::size_t>(n)].placement_group);
  }
  return netsim::Topology(std::move(spec),
                          netsim::Fabric::ten_gigabit_ethernet(),
                          netsim::Fabric::shared_memory());
}

}  // namespace hetero::cloud
