#pragma once

/// \file spot_market.hpp
/// Stochastic spot-price and spot-capacity model. The paper's key empirical
/// facts: spot cc2.8xlarge cost ~54 cents/hour against $2.40 on demand, the
/// price is unpredictable ("impossible to estimate when instances start,
/// how long they are available, and their actual price"), and a full
/// 63-host spot assembly was never achieved. This model reproduces exactly
/// those behaviours deterministically from a seed.

#include <cstdint>
#include <vector>

#include "cloud/instance_types.hpp"
#include "support/rng.hpp"

namespace hetero::cloud {

class SpotMarket {
 public:
  explicit SpotMarket(std::uint64_t seed);

  /// Spot price (USD/hour) of `type` during hour `hour` since epoch.
  /// Mean-reverting log-AR(1) around the type's typical spot price, with
  /// occasional demand spikes that can exceed the on-demand price.
  double price(const InstanceType& type, std::int64_t hour);

  /// Spare capacity (instances) the market can start during `hour`.
  /// Cluster Compute capacity is scarce; the paper never assembled 63.
  int capacity(const InstanceType& type, std::int64_t hour);

  /// How many of `count` requested instances start in `hour` given `bid`:
  /// zero when the bid is below the price, else capacity-limited.
  int fulfill(const InstanceType& type, double bid, int count,
              std::int64_t hour);

 private:
  /// Deterministic per-(type, hour) stream.
  Rng stream(const InstanceType& type, std::int64_t hour,
             std::uint64_t salt) const;

  std::uint64_t seed_;
};

}  // namespace hetero::cloud
