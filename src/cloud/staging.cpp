#include "cloud/staging.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace hetero::cloud {

namespace {
// Throughput figures of the era (bytes/second).
constexpr double kEbsCloneBps = 80e6;    // snapshot -> volume hydration
constexpr double kNfsServerBps = 110e6;  // one 10GbE NFS server, TCP-bound
constexpr double kImageBakeBps = 60e6;   // building + uploading the AMI
constexpr double kEbsPerVolumeSetupS = 45.0;  // create + attach + mount
constexpr double kNfsServiceSetupS = 300.0;   // install + export + mounts
}  // namespace

std::string to_string(StagingMethod method) {
  switch (method) {
    case StagingMethod::kBootImage: return "boot image";
    case StagingMethod::kEbsVolumes: return "EBS volumes";
    case StagingMethod::kNfs: return "NFS";
  }
  return "?";
}

double staging_time_s(StagingMethod method, std::uint64_t bytes,
                      int instances) {
  HETERO_REQUIRE(instances >= 1, "staging needs at least one instance");
  switch (method) {
    case StagingMethod::kBootImage:
      // Data arrives with the image; nothing to do per launch.
      return 0.0;
    case StagingMethod::kEbsVolumes:
      // Volumes hydrate in parallel, one per instance.
      return kEbsPerVolumeSetupS + static_cast<double>(bytes) / kEbsCloneBps;
    case StagingMethod::kNfs:
      // Every client pulls the input through the single server.
      return kNfsServiceSetupS +
             static_cast<double>(bytes) * instances / kNfsServerBps;
  }
  throw Error("unknown staging method");
}

double staging_setup_s(StagingMethod method, std::uint64_t bytes) {
  switch (method) {
    case StagingMethod::kBootImage:
      // Resize the boot partition, copy the inputs, snapshot the AMI.
      return 600.0 + static_cast<double>(bytes) / kImageBakeBps;
    case StagingMethod::kEbsVolumes:
      // Upload one snapshot the volumes clone from.
      return 120.0 + static_cast<double>(bytes) / kEbsCloneBps;
    case StagingMethod::kNfs:
      return 0.0;  // conditioning happens at first launch instead
  }
  throw Error("unknown staging method");
}

StagingMethod recommend_staging(std::uint64_t bytes, int instances,
                                int launches_planned) {
  HETERO_REQUIRE(launches_planned >= 1, "plan at least one launch");
  const StagingMethod methods[] = {StagingMethod::kBootImage,
                                   StagingMethod::kEbsVolumes,
                                   StagingMethod::kNfs};
  StagingMethod best = StagingMethod::kBootImage;
  double best_total = -1.0;
  for (StagingMethod m : methods) {
    const double total = staging_setup_s(m, bytes) +
                         launches_planned * staging_time_s(m, bytes,
                                                           instances);
    if (best_total < 0.0 || total < best_total - 1e-9) {
      best_total = total;
      best = m;
    }
  }
  return best;
}

}  // namespace hetero::cloud
