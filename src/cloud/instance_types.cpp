#include "cloud/instance_types.hpp"

#include "support/error.hpp"

namespace hetero::cloud {

const std::vector<InstanceType>& instance_catalog() {
  static const std::vector<InstanceType> catalog = {
      {"t1.micro", 1, 0.6, "slow", 0, 0.02, 0.008, false},
      {"m1.small", 1, 1.7, "slow", 0, 0.08, 0.03, false},
      {"m1.large", 2, 7.5, "1GbE", 0, 0.32, 0.12, false},
      {"m1.xlarge", 4, 15.0, "1GbE", 0, 0.64, 0.24, false},
      // Cluster Compute generation 1: the build target of §VI-D.
      {"cc1.4xlarge", 8, 23.0, "10GbE", 0, 1.30, 0.45, true},
      // GPU cluster instance mentioned in §V-D.
      {"cg1.4xlarge", 8, 22.0, "10GbE", 2, 2.10, 0.70, true},
      // The instance the experiments run on: 2x 8-core Xeon E5, 60.5 GB.
      {"cc2.8xlarge", 16, 60.5, "10GbE", 0, 2.40, 0.54, true},
  };
  return catalog;
}

const InstanceType& instance_type(const std::string& name) {
  for (const auto& t : instance_catalog()) {
    if (t.name == name) {
      return t;
    }
  }
  throw Error("unknown EC2 instance type: " + name);
}

}  // namespace hetero::cloud
