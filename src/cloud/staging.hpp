#pragma once

/// \file staging.hpp
/// Input staging onto a cloud assembly — the §VI-D storage discussion.
///
/// The paper's image provided 20 GB boot partitions, too small for the
/// problem meshes; the options it weighed were (a) an NFS service, (b)
/// Elastic Block Store volumes ("one volume may be mounted to a single EC2
/// instance only"), and (c) resizing the boot partition and baking the
/// inputs into the private image — which they chose. This model quantifies
/// the trade-off for a given input size and assembly width.

#include <cstdint>
#include <string>

namespace hetero::cloud {

enum class StagingMethod {
  /// Inputs baked into the (resized) boot image: paid once at image
  /// creation, free per instance at run time — the paper's choice.
  kBootImage,
  /// One EBS volume per instance, each cloned from a snapshot.
  kEbsVolumes,
  /// One instance exports the data over NFS to the rest.
  kNfs,
};

std::string to_string(StagingMethod method);

/// Time to make `bytes` of input visible on every one of `instances`
/// hosts at job start (excludes one-time image preparation).
double staging_time_s(StagingMethod method, std::uint64_t bytes,
                      int instances);

/// One-time preparation cost of the method (image bake / snapshot upload /
/// NFS service conditioning), seconds.
double staging_setup_s(StagingMethod method, std::uint64_t bytes);

/// The method with the lowest per-launch staging time for this shape;
/// ties break toward the boot image (operationally simplest).
StagingMethod recommend_staging(std::uint64_t bytes, int instances,
                                int launches_planned);

}  // namespace hetero::cloud
