#include "cloud/spot_market.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace hetero::cloud {

namespace {
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t type_hash(const InstanceType& type) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : type.name) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

SpotMarket::SpotMarket(std::uint64_t seed) : seed_(seed) {}

Rng SpotMarket::stream(const InstanceType& type, std::int64_t hour,
                       std::uint64_t salt) const {
  return Rng(mix(mix(seed_, type_hash(type)),
                 mix(static_cast<std::uint64_t>(hour), salt)));
}

double SpotMarket::price(const InstanceType& type, std::int64_t hour) {
  HETERO_REQUIRE(type.typical_spot_hourly_usd > 0.0,
                 "instance type has no spot market: " + type.name);
  // Log-AR(1): iterate a short window ending at `hour` so nearby hours are
  // correlated yet any hour is computable without global state.
  const double target = std::log(type.typical_spot_hourly_usd);
  double lp = target;
  constexpr int kWindow = 24;
  for (std::int64_t h = hour - kWindow; h <= hour; ++h) {
    Rng rng = stream(type, h, 0xA11CE);
    lp = 0.80 * lp + 0.20 * target + 0.12 * rng.normal();
    // Demand spikes: with small probability the price jumps above the
    // on-demand rate (documented spot behaviour of the era).
    if (rng.bernoulli(0.012)) {
      lp = std::log(type.on_demand_hourly_usd * rng.uniform(1.05, 1.8));
    }
  }
  return std::exp(lp);
}

int SpotMarket::capacity(const InstanceType& type, std::int64_t hour) {
  Rng rng = stream(type, hour, 0xCAFE);
  if (type.cluster_compute) {
    // Scarce HPC capacity: typically 15..45 spare cc instances.
    return static_cast<int>(rng.uniform_int(15, 45));
  }
  return static_cast<int>(rng.uniform_int(200, 2000));
}

int SpotMarket::fulfill(const InstanceType& type, double bid, int count,
                        std::int64_t hour) {
  HETERO_REQUIRE(count >= 0, "cannot request a negative instance count");
  if (count == 0 || bid < price(type, hour)) {
    return 0;
  }
  return std::min(count, capacity(type, hour));
}

}  // namespace hetero::cloud
