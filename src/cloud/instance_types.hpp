#pragma once

/// \file instance_types.hpp
/// The EC2 resource-class catalog as of the paper's study (§V-D): from
/// t1.micro up to the Cluster Compute instances, with the pricing the
/// paper reports for cc2.8xlarge ($2.40 on demand, ~54 cents spot).

#include <string>
#include <vector>

namespace hetero::cloud {

struct InstanceType {
  std::string name;
  int cores = 1;
  double ram_gb = 1.0;
  /// Inter-node fabric class: "slow" (sub-gigabit), "1GbE", "10GbE".
  std::string network;
  int gpus = 0;
  double on_demand_hourly_usd = 0.0;
  /// Long-run average spot price; the market model reverts to this.
  double typical_spot_hourly_usd = 0.0;
  /// Cluster Compute types support placement groups and HVM images.
  bool cluster_compute = false;
};

/// All instance types heterolab models.
const std::vector<InstanceType>& instance_catalog();

/// Lookup by API name; throws on unknown types.
const InstanceType& instance_type(const std::string& name);

}  // namespace hetero::cloud
