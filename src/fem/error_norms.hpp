#pragma once

/// \file error_norms.hpp
/// Discretization-error measurement against analytic solutions — the
/// "mathematical correctness" check the paper runs via known exact
/// solutions for both test cases.

#include "fem/assembler.hpp"
#include "la/dist_vector.hpp"

namespace hetero::fem {

/// Interpolates `f` at every dof of `space` present in `map` (owned and
/// ghost alike; dof coordinates are known locally so no communication is
/// needed for the space's own dofs) and refreshes remaining ghosts.
/// Collective.
la::DistVector interpolate(simmpi::Comm& comm, const FeSpace& space,
                           const la::IndexMap& map,
                           const la::HaloExchange& halo, const SpatialFn& f);

/// Global L2 norm of (u_h - u_exact) over the rank-local elements, reduced
/// across ranks. `u` must have fresh ghosts. Collective.
double l2_error(simmpi::Comm& comm, const ElementKernel& kernel,
                const la::IndexMap& map, const la::DistVector& u,
                const SpatialFn& exact);

/// Maximum nodal error |u_h(dof) - u_exact(dof)| over owned dofs; collective.
double nodal_max_error(simmpi::Comm& comm, const FeSpace& space,
                       const la::IndexMap& map, const la::DistVector& u,
                       const SpatialFn& exact);

/// Global H1 seminorm of (u_h - u_exact): the L2 norm of the gradient
/// error, against the analytic gradient. `u` must have fresh ghosts.
/// Collective.
double h1_seminorm_error(simmpi::Comm& comm, const ElementKernel& kernel,
                         const la::IndexMap& map, const la::DistVector& u,
                         const VectorFn& grad_exact);

/// Gathers the space-local dof values of `u` (by space dof index) so element
/// kernels can evaluate the FE function; ghosts must be fresh.
std::vector<double> space_values(const FeSpace& space, const la::IndexMap& map,
                                 const la::DistVector& u);

}  // namespace hetero::fem
