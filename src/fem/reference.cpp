#include "fem/reference.hpp"

#include "mesh/edges.hpp"
#include "support/error.hpp"

namespace hetero::fem {

namespace {

std::vector<QuadPoint> make_degree1() {
  return {{{0.25, 0.25, 0.25}, 1.0 / 6.0}};
}

std::vector<QuadPoint> make_degree2() {
  // Four symmetric points, degree 2.
  const double a = 0.585410196624969;   // (5 + 3*sqrt(5)) / 20
  const double b = 0.138196601125011;   // (5 - sqrt(5)) / 20
  const double w = 1.0 / 24.0;
  // Barycentric (a, b, b, b) permutations; xi = (l1, l2, l3).
  return {
      {{b, b, b}, w},  // a at l0
      {{a, b, b}, w},
      {{b, a, b}, w},
      {{b, b, a}, w},
  };
}

std::vector<QuadPoint> make_degree3() {
  // Centroid + four points, degree 3 (negative centroid weight).
  const double w0 = -2.0 / 15.0;
  const double w1 = 3.0 / 40.0;
  const double a = 0.5;
  const double b = 1.0 / 6.0;
  return {
      {{0.25, 0.25, 0.25}, w0},
      {{b, b, b}, w1},  // a at l0
      {{a, b, b}, w1},
      {{b, a, b}, w1},
      {{b, b, a}, w1},
  };
}

std::vector<QuadPoint> make_degree4() {
  // Keast 11-point rule, degree 4.
  std::vector<QuadPoint> pts;
  const double w0 = -0.0131555555555556;
  pts.push_back({{0.25, 0.25, 0.25}, w0});
  const double a = 1.0 / 14.0;       // barycentric (11/14, 1/14, 1/14, 1/14)
  const double w1 = 0.00762222222222222;
  const double a0 = 11.0 / 14.0;
  pts.push_back({{a, a, a}, w1});    // big weight at l0
  pts.push_back({{a0, a, a}, w1});
  pts.push_back({{a, a0, a}, w1});
  pts.push_back({{a, a, a0}, w1});
  const double b = 0.399403576166799;
  const double c = 0.100596423833201;
  const double w2 = 0.0248888888888889;
  // Barycentric permutations of (b, b, c, c); xi drops l0.
  pts.push_back({{b, c, c}, w2});    // (b,b,c,c)
  pts.push_back({{c, b, c}, w2});    // (b,c,b,c)
  pts.push_back({{c, c, b}, w2});    // (b,c,c,b)
  pts.push_back({{b, b, c}, w2});    // (c,b,b,c)
  pts.push_back({{b, c, b}, w2});    // (c,b,c,b)
  pts.push_back({{c, b, b}, w2});    // (c,c,b,b)
  return pts;
}

}  // namespace

const std::vector<QuadPoint>& tet_quadrature(int degree) {
  static const std::vector<QuadPoint> d1 = make_degree1();
  static const std::vector<QuadPoint> d2 = make_degree2();
  static const std::vector<QuadPoint> d3 = make_degree3();
  static const std::vector<QuadPoint> d4 = make_degree4();
  switch (degree) {
    case 0:
    case 1: return d1;
    case 2: return d2;
    case 3: return d3;
    case 4: return d4;
    default:
      throw Error("tet_quadrature: unsupported degree (max 4)");
  }
}

std::array<double, 4> p1_values(const mesh::Vec3& xi) {
  return {1.0 - xi.x - xi.y - xi.z, xi.x, xi.y, xi.z};
}

std::array<mesh::Vec3, 4> p1_gradients() {
  return {mesh::Vec3{-1.0, -1.0, -1.0}, mesh::Vec3{1.0, 0.0, 0.0},
          mesh::Vec3{0.0, 1.0, 0.0}, mesh::Vec3{0.0, 0.0, 1.0}};
}

std::array<double, 10> p2_values(const mesh::Vec3& xi) {
  const auto l = p1_values(xi);
  std::array<double, 10> v{};
  for (int i = 0; i < 4; ++i) {
    v[static_cast<std::size_t>(i)] =
        l[static_cast<std::size_t>(i)] * (2.0 * l[static_cast<std::size_t>(i)] - 1.0);
  }
  for (std::size_t e = 0; e < mesh::kTetEdgeVertices.size(); ++e) {
    const int a = mesh::kTetEdgeVertices[e][0];
    const int b = mesh::kTetEdgeVertices[e][1];
    v[4 + e] = 4.0 * l[static_cast<std::size_t>(a)] * l[static_cast<std::size_t>(b)];
  }
  return v;
}

std::array<mesh::Vec3, 10> p2_gradients(const mesh::Vec3& xi) {
  const auto l = p1_values(xi);
  const auto g = p1_gradients();
  std::array<mesh::Vec3, 10> out{};
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        g[static_cast<std::size_t>(i)] *
        (4.0 * l[static_cast<std::size_t>(i)] - 1.0);
  }
  for (std::size_t e = 0; e < mesh::kTetEdgeVertices.size(); ++e) {
    const int a = mesh::kTetEdgeVertices[e][0];
    const int b = mesh::kTetEdgeVertices[e][1];
    out[4 + e] = 4.0 * (g[static_cast<std::size_t>(a)] * l[static_cast<std::size_t>(b)] +
                        g[static_cast<std::size_t>(b)] * l[static_cast<std::size_t>(a)]);
  }
  return out;
}

ShapeTable build_shape_table(int order, int quad_degree) {
  HETERO_REQUIRE(order == 1 || order == 2,
                 "build_shape_table supports order 1 and 2");
  ShapeTable table;
  table.dofs = order == 1 ? kP1Dofs : kP2Dofs;
  table.points = tet_quadrature(quad_degree);
  table.values.resize(table.points.size());
  table.grads.resize(table.points.size());
  for (std::size_t q = 0; q < table.points.size(); ++q) {
    const auto& xi = table.points[q].xi;
    if (order == 1) {
      const auto v = p1_values(xi);
      const auto g = p1_gradients();
      table.values[q].assign(v.begin(), v.end());
      table.grads[q].assign(g.begin(), g.end());
    } else {
      const auto v = p2_values(xi);
      const auto g = p2_gradients(xi);
      table.values[q].assign(v.begin(), v.end());
      table.grads[q].assign(g.begin(), g.end());
    }
  }
  return table;
}

}  // namespace hetero::fem
