#include "fem/fe_space.hpp"

#include "support/error.hpp"

namespace hetero::fem {

FeSpace::FeSpace(const mesh::TetMesh& mesh, int order,
                 std::int64_t global_vertex_count)
    : mesh_(&mesh), order_(order), global_vertex_count_(global_vertex_count) {
  HETERO_REQUIRE(order == 1 || order == 2, "FeSpace supports order 1 and 2");
  HETERO_REQUIRE(global_vertex_count >=
                     static_cast<std::int64_t>(mesh.vertex_count()),
                 "global vertex count below local vertex count");

  const int nv = static_cast<int>(mesh.vertex_count());
  dof_gids_.reserve(static_cast<std::size_t>(nv));
  dof_coords_.reserve(static_cast<std::size_t>(nv));
  for (int v = 0; v < nv; ++v) {
    dof_gids_.push_back(mesh.vertex_gid(v));
    dof_coords_.push_back(mesh.vertex(v));
  }

  const int per_tet = dofs_per_tet();
  tet_dofs_.resize(mesh.tet_count() * static_cast<std::size_t>(per_tet));

  if (order == 1) {
    for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
      for (int i = 0; i < 4; ++i) {
        tet_dofs_[t * 4 + static_cast<std::size_t>(i)] =
            mesh.tet(t)[static_cast<std::size_t>(i)];
      }
    }
    return;
  }

  // P2: append one dof per unique edge.
  const mesh::EdgeSet edges = mesh::build_edges(mesh);
  for (const auto& e : edges.edges) {
    dof_gids_.push_back(mesh::edge_gid(mesh.vertex_gid(e[0]),
                                       mesh.vertex_gid(e[1]),
                                       global_vertex_count));
    dof_coords_.push_back(mesh::midpoint(mesh.vertex(e[0]), mesh.vertex(e[1])));
  }
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    for (int i = 0; i < 4; ++i) {
      tet_dofs_[t * 10 + static_cast<std::size_t>(i)] =
          mesh.tet(t)[static_cast<std::size_t>(i)];
    }
    for (int e = 0; e < 6; ++e) {
      tet_dofs_[t * 10 + 4 + static_cast<std::size_t>(e)] =
          nv + edges.tet_edges[t][static_cast<std::size_t>(e)];
    }
  }
}

const ShapeTable& FeSpace::shape_table(int quad_degree) const {
  for (const auto& [degree, table] : shape_tables_) {
    if (degree == quad_degree) return *table;
  }
  shape_tables_.emplace_back(
      quad_degree, std::make_unique<ShapeTable>(
                       build_shape_table(order_, quad_degree)));
  return *shape_tables_.back().second;
}

void FeSpace::tet_dof_gids(std::size_t t, std::span<la::GlobalId> out) const {
  const auto dofs = tet_dofs(t);
  HETERO_REQUIRE(out.size() == dofs.size(), "tet_dof_gids: bad span size");
  for (std::size_t i = 0; i < dofs.size(); ++i) {
    out[i] = dof_gids_[static_cast<std::size_t>(dofs[i])];
  }
}

}  // namespace hetero::fem
