#pragma once

/// \file fe_space.hpp
/// Scalar Lagrange finite-element space (P1 or P2) over a rank-local
/// tetrahedral mesh, with globally consistent dof ids:
///   * vertex dofs reuse the mesh's global vertex ids;
///   * P2 edge dofs use mesh::edge_gid over the global vertex pair,
/// so two ranks sharing a partition interface agree on every shared dof id
/// without any communication.
///
/// Vector-valued fields (Navier–Stokes velocity+pressure) expand scalar ids
/// component-wise through `block_gid`.

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "fem/reference.hpp"
#include "la/index_map.hpp"
#include "mesh/edges.hpp"
#include "mesh/tet_mesh.hpp"

namespace hetero::fem {

class FeSpace {
 public:
  /// `mesh` must outlive the space. `global_vertex_count` is the vertex
  /// count of the *global* mesh (for serial meshes: mesh.vertex_count()).
  FeSpace(const mesh::TetMesh& mesh, int order,
          std::int64_t global_vertex_count);

  const mesh::TetMesh& mesh() const { return *mesh_; }
  int order() const { return order_; }
  int dofs_per_tet() const { return order_ == 1 ? 4 : 10; }
  std::int64_t global_vertex_count() const { return global_vertex_count_; }

  /// Number of dofs this rank touches (vertices + edges of its elements).
  int local_dof_count() const { return static_cast<int>(dof_gids_.size()); }

  la::GlobalId dof_gid(int dof) const {
    return dof_gids_[static_cast<std::size_t>(dof)];
  }
  const std::vector<la::GlobalId>& dof_gids() const { return dof_gids_; }

  /// Geometric location of a dof (vertex or edge midpoint).
  const mesh::Vec3& dof_coord(int dof) const {
    return dof_coords_[static_cast<std::size_t>(dof)];
  }

  /// The space-local dof indices of tet `t`, in P1/P2 shape-function order.
  std::span<const int> tet_dofs(std::size_t t) const {
    const int n = dofs_per_tet();
    return {tet_dofs_.data() + static_cast<std::ptrdiff_t>(t) * n,
            static_cast<std::size_t>(n)};
  }

  /// dof gids of tet `t` (convenience for assembly).
  void tet_dof_gids(std::size_t t, std::span<la::GlobalId> out) const;

  /// Expands a scalar gid into component `comp` of an `ncomp` block system.
  static la::GlobalId block_gid(la::GlobalId scalar_gid, int comp,
                                int ncomp) {
    return scalar_gid * ncomp + comp;
  }

  /// Reference-element shape/quadrature table for this space's order,
  /// tabulated once per quadrature degree and shared by every kernel built
  /// over this space (kernels used to own private copies). The returned
  /// reference stays valid for the life of the space.
  const ShapeTable& shape_table(int quad_degree) const;

 private:
  const mesh::TetMesh* mesh_;
  int order_;
  std::int64_t global_vertex_count_ = 0;
  std::vector<la::GlobalId> dof_gids_;
  std::vector<mesh::Vec3> dof_coords_;
  std::vector<int> tet_dofs_;  // dofs_per_tet() entries per tet
  // Lazily filled (degree, table) cache; unique_ptr keeps handed-out
  // references stable while the vector grows.
  mutable std::vector<std::pair<int, std::unique_ptr<ShapeTable>>>
      shape_tables_;
};

}  // namespace hetero::fem
