#include "fem/bc.hpp"

#include "support/error.hpp"

namespace hetero::fem {

DirichletData make_dirichlet(simmpi::Comm& comm, const FeSpace& space,
                             const la::IndexMap& map,
                             const la::HaloExchange& halo,
                             const BoundaryPredicate& on_boundary,
                             const BoundaryValueFn& g) {
  DirichletData bc(map);
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const int l = map.local(space.dof_gid(d));
    if (l == la::kInvalidLocal || !map.is_owned_local(l)) {
      continue;  // owner fills it; we'll see it via the halo
    }
    const mesh::Vec3& x = space.dof_coord(d);
    if (on_boundary(x)) {
      bc.flags[l] = 1.0;
      bc.values[l] = g(x);
    }
  }
  bc.flags.update_ghosts(comm, halo);
  bc.values.update_ghosts(comm, halo);
  return bc;
}

DirichletData make_dirichlet_block(
    simmpi::Comm& comm, const FeSpace& space, const la::IndexMap& map,
    const la::HaloExchange& halo, int ncomp,
    const BoundaryPredicate& on_boundary,
    const std::function<bool(const mesh::Vec3&, int)>& constrained_comp,
    const std::function<double(const mesh::Vec3&, int)>& g_comp) {
  DirichletData bc(map);
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const mesh::Vec3& x = space.dof_coord(d);
    if (!on_boundary(x)) {
      continue;
    }
    for (int c = 0; c < ncomp; ++c) {
      const int l = map.local(FeSpace::block_gid(space.dof_gid(d), c, ncomp));
      if (l == la::kInvalidLocal || !map.is_owned_local(l)) {
        continue;
      }
      if (constrained_comp(x, c)) {
        bc.flags[l] = 1.0;
        bc.values[l] = g_comp(x, c);
      }
    }
  }
  bc.flags.update_ghosts(comm, halo);
  bc.values.update_ghosts(comm, halo);
  return bc;
}

void apply_dirichlet(la::DistCsrMatrix& a, la::DistVector& rhs,
                     la::DistVector& x, const DirichletData& bc) {
  la::CsrMatrix& m = a.local_mut();
  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  auto values = m.values_mut();
  const int rows = m.rows();
  HETERO_REQUIRE(rhs.owned_count() == rows && x.owned_count() == rows,
                 "apply_dirichlet: vector size mismatch");
  for (int r = 0; r < rows; ++r) {
    const auto begin = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r)]);
    const auto end =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r) + 1]);
    if (bc.flags[r] != 0.0) {
      // Constrained row -> identity.
      for (std::size_t k = begin; k < end; ++k) {
        values[k] = (col_idx[k] == r) ? 1.0 : 0.0;
      }
      rhs[r] = bc.values[r];
      x[r] = bc.values[r];
      continue;
    }
    // Free row: fold constrained columns into the rhs (ghosts included —
    // their flags/values were refreshed when the data was built).
    for (std::size_t k = begin; k < end; ++k) {
      const int c = col_idx[k];
      if (bc.flags[c] != 0.0) {
        rhs[r] -= values[k] * bc.values[c];
        values[k] = 0.0;
      }
    }
  }
}

}  // namespace hetero::fem
