#include "fem/bc.hpp"

#include "la/kernels.hpp"
#include "support/error.hpp"

namespace hetero::fem {

DirichletData make_dirichlet(simmpi::Comm& comm, const FeSpace& space,
                             const la::IndexMap& map,
                             const la::HaloExchange& halo,
                             const BoundaryPredicate& on_boundary,
                             const BoundaryValueFn& g) {
  DirichletData bc(map);
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const int l = map.local(space.dof_gid(d));
    if (l == la::kInvalidLocal || !map.is_owned_local(l)) {
      continue;  // owner fills it; we'll see it via the halo
    }
    const mesh::Vec3& x = space.dof_coord(d);
    if (on_boundary(x)) {
      bc.flags[l] = 1.0;
      bc.values[l] = g(x);
    }
  }
  bc.flags.update_ghosts(comm, halo);
  bc.values.update_ghosts(comm, halo);
  return bc;
}

DirichletData make_dirichlet_block(
    simmpi::Comm& comm, const FeSpace& space, const la::IndexMap& map,
    const la::HaloExchange& halo, int ncomp,
    const BoundaryPredicate& on_boundary,
    const std::function<bool(const mesh::Vec3&, int)>& constrained_comp,
    const std::function<double(const mesh::Vec3&, int)>& g_comp) {
  DirichletData bc(map);
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const mesh::Vec3& x = space.dof_coord(d);
    if (!on_boundary(x)) {
      continue;
    }
    for (int c = 0; c < ncomp; ++c) {
      const int l = map.local(FeSpace::block_gid(space.dof_gid(d), c, ncomp));
      if (l == la::kInvalidLocal || !map.is_owned_local(l)) {
        continue;
      }
      if (constrained_comp(x, c)) {
        bc.flags[l] = 1.0;
        bc.values[l] = g_comp(x, c);
      }
    }
  }
  bc.flags.update_ghosts(comm, halo);
  bc.values.update_ghosts(comm, halo);
  return bc;
}

DirichletPlan::DirichletPlan(simmpi::Comm& comm, const FeSpace& space,
                             const la::IndexMap& map,
                             const la::HaloExchange& halo,
                             const BoundaryPredicate& on_boundary)
    : data_(map) {
  // Same dof sweep as make_dirichlet, recorded once.
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const int l = map.local(space.dof_gid(d));
    if (l == la::kInvalidLocal || !map.is_owned_local(l)) {
      continue;
    }
    const mesh::Vec3& x = space.dof_coord(d);
    if (on_boundary(x)) {
      data_.flags[l] = 1.0;
      entries_.push_back(Entry{l, 0, x});
    }
  }
  data_.flags.update_ghosts(comm, halo);
}

DirichletPlan::DirichletPlan(
    simmpi::Comm& comm, const FeSpace& space, const la::IndexMap& map,
    const la::HaloExchange& halo, int ncomp,
    const BoundaryPredicate& on_boundary,
    const std::function<bool(const mesh::Vec3&, int)>& constrained_comp)
    : data_(map) {
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const mesh::Vec3& x = space.dof_coord(d);
    if (!on_boundary(x)) {
      continue;
    }
    for (int c = 0; c < ncomp; ++c) {
      const int l = map.local(FeSpace::block_gid(space.dof_gid(d), c, ncomp));
      if (l == la::kInvalidLocal || !map.is_owned_local(l)) {
        continue;
      }
      if (constrained_comp(x, c)) {
        data_.flags[l] = 1.0;
        entries_.push_back(Entry{l, c, x});
      }
    }
  }
  data_.flags.update_ghosts(comm, halo);
}

DirichletPlan::DirichletPlan(
    simmpi::Comm& comm, const la::IndexMap& map, const la::HaloExchange& halo,
    const std::function<
        void(const std::function<void(int, const mesh::Vec3&, int)>&)>&
        collect)
    : data_(map) {
  collect([this](int lid, const mesh::Vec3& coord, int comp) {
    data_.flags[lid] = 1.0;
    entries_.push_back(Entry{lid, comp, coord});
  });
  data_.flags.update_ghosts(comm, halo);
}

void DirichletPlan::update(simmpi::Comm& comm, const la::HaloExchange& halo,
                           const BoundaryValueFn& g) {
  // Free entries of `values` stay 0 (they are never written), matching the
  // freshly zeroed vectors make_dirichlet allocates.
  for (const Entry& e : entries_) {
    data_.values[e.lid] = g(e.coord);
  }
  data_.values.update_ghosts(comm, halo);
}

void DirichletPlan::update_block(
    simmpi::Comm& comm, const la::HaloExchange& halo,
    const std::function<double(const mesh::Vec3&, int)>& g_comp) {
  for (const Entry& e : entries_) {
    data_.values[e.lid] = g_comp(e.coord, e.comp);
  }
  data_.values.update_ghosts(comm, halo);
}

void DirichletPlan::build_apply_plan(const la::CsrMatrix& m) {
  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  const int rows = m.rows();
  for (int r = 0; r < rows; ++r) {
    const auto begin =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r)]);
    const auto end =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r) + 1]);
    if (data_.flags[r] != 0.0) {
      ident_rows_.push_back(r);
      for (std::size_t k = begin; k < end; ++k) {
        ident_slots_.push_back(static_cast<std::int64_t>(k));
        ident_vals_.push_back(col_idx[k] == r ? 1.0 : 0.0);
      }
      continue;
    }
    for (std::size_t k = begin; k < end; ++k) {
      if (data_.flags[col_idx[k]] != 0.0) {
        fold_rows_.push_back(r);
        fold_slots_.push_back(static_cast<std::int64_t>(k));
        fold_cols_.push_back(col_idx[k]);
      }
    }
  }
  apply_built_ = true;
}

void DirichletPlan::apply(la::DistCsrMatrix& a, la::DistVector& rhs,
                          la::DistVector& x) {
  if (la::kernel_mode() == la::KernelMode::kReference) {
    apply_dirichlet(a, rhs, x, data_);
    return;
  }
  la::CsrMatrix& m = a.local_mut();
  const int rows = m.rows();
  HETERO_REQUIRE(rhs.owned_count() == rows && x.owned_count() == rows,
                 "apply_dirichlet: vector size mismatch");
  if (!apply_built_) {
    build_apply_plan(m);
  }
  auto values = m.values_mut();
  // Identity writes and rhs/x assignments touch only constrained rows;
  // folds touch only free rows — disjoint targets, and the fold list
  // replays apply_dirichlet's (row ascending, slot ascending) order, so
  // every rhs accumulation chain is unchanged.
  for (std::size_t i = 0; i < ident_slots_.size(); ++i) {
    values[static_cast<std::size_t>(ident_slots_[i])] = ident_vals_[i];
  }
  for (const std::int32_t r : ident_rows_) {
    rhs[r] = data_.values[r];
    x[r] = data_.values[r];
  }
  for (std::size_t i = 0; i < fold_rows_.size(); ++i) {
    const auto slot = static_cast<std::size_t>(fold_slots_[i]);
    rhs[fold_rows_[i]] -= values[slot] * data_.values[fold_cols_[i]];
    values[slot] = 0.0;
  }
}

void apply_dirichlet(la::DistCsrMatrix& a, la::DistVector& rhs,
                     la::DistVector& x, const DirichletData& bc) {
  la::CsrMatrix& m = a.local_mut();
  const auto row_ptr = m.row_ptr();
  const auto col_idx = m.col_idx();
  auto values = m.values_mut();
  const int rows = m.rows();
  HETERO_REQUIRE(rhs.owned_count() == rows && x.owned_count() == rows,
                 "apply_dirichlet: vector size mismatch");
  for (int r = 0; r < rows; ++r) {
    const auto begin = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r)]);
    const auto end =
        static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r) + 1]);
    if (bc.flags[r] != 0.0) {
      // Constrained row -> identity.
      for (std::size_t k = begin; k < end; ++k) {
        values[k] = (col_idx[k] == r) ? 1.0 : 0.0;
      }
      rhs[r] = bc.values[r];
      x[r] = bc.values[r];
      continue;
    }
    // Free row: fold constrained columns into the rhs (ghosts included —
    // their flags/values were refreshed when the data was built).
    for (std::size_t k = begin; k < end; ++k) {
      const int c = col_idx[k];
      if (bc.flags[c] != 0.0) {
        rhs[r] -= values[k] * bc.values[c];
        values[k] = 0.0;
      }
    }
  }
}

}  // namespace hetero::fem
