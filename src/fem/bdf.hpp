#pragma once

/// \file bdf.hpp
/// Backward Differentiation Formula coefficients. The paper's applications
/// use BDF2 for the time derivative:
///   du/dt |_{t_{k+1}} ~ (alpha u^{k+1} - sum_i beta_i u^{k-i}) / dt.

#include <array>

#include "support/error.hpp"

namespace hetero::fem {

struct BdfScheme {
  int order = 1;
  /// Coefficient of the new solution (divided by dt by the caller).
  double alpha = 1.0;
  /// History coefficients beta[0] (u^k), beta[1] (u^{k-1}).
  std::array<double, 2> beta{1.0, 0.0};
};

/// order 1: u' ~ (u^{k+1} - u^k)/dt.
/// order 2: u' ~ (1.5 u^{k+1} - 2 u^k + 0.5 u^{k-1})/dt, exact for
/// quadratic-in-time solutions — the RD oracle depends on this.
inline BdfScheme bdf_scheme(int order) {
  HETERO_REQUIRE(order == 1 || order == 2, "bdf_scheme supports order 1, 2");
  if (order == 1) {
    return BdfScheme{1, 1.0, {1.0, 0.0}};
  }
  return BdfScheme{2, 1.5, {2.0, -0.5}};
}

/// Second-order extrapolation of the convective velocity:
/// u* = 2 u^k - u^{k-1} (order 2) or u^k (order 1).
inline std::array<double, 2> bdf_extrapolation(int order) {
  HETERO_REQUIRE(order == 1 || order == 2, "extrapolation supports order 1, 2");
  if (order == 1) {
    return {1.0, 0.0};
  }
  return {2.0, -1.0};
}

}  // namespace hetero::fem
