#include "fem/assembler.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels.hpp"
#include "support/error.hpp"

namespace hetero::fem {

namespace {

/// FLOP/byte tallies of the element kernels (obs counters
/// fem.kernel.assembly.{flops,bytes}); see docs/kernels.md.
la::KernelWork& fem_work() {
  static la::KernelWork work("fem.kernel.assembly");
  return work;
}

}  // namespace

TetGeometry TetGeometry::compute(const mesh::TetMesh& mesh, std::size_t t) {
  const auto& tet = mesh.tet(t);
  TetGeometry g;
  g.origin = mesh.vertex(tet[0]);
  for (int i = 0; i < 3; ++i) {
    g.edges[i] = mesh.vertex(tet[static_cast<std::size_t>(i) + 1]) - g.origin;
  }
  // J columns are the edge vectors; det J = e0 . (e1 x e2).
  const mesh::Vec3 c12 = g.edges[1].cross(g.edges[2]);
  const double det = g.edges[0].dot(c12);
  HETERO_REQUIRE(det > 0.0, "TetGeometry: inverted or degenerate tet");
  g.det = det;
  // Rows of J^{-1} are cross products / det; columns of J^{-T} equal them.
  const mesh::Vec3 c20 = g.edges[2].cross(g.edges[0]);
  const mesh::Vec3 c01 = g.edges[0].cross(g.edges[1]);
  g.jinv_t[0] = c12 * (1.0 / det);
  g.jinv_t[1] = c20 * (1.0 / det);
  g.jinv_t[2] = c01 * (1.0 / det);
  return g;
}

const TetGeometry& GeometryCache::get(std::size_t t) const {
  if (la::kernel_mode() == la::KernelMode::kFast) {
    if (!built_) {
      const std::size_t count = mesh_->tet_count();
      cache_.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        cache_.push_back(TetGeometry::compute(*mesh_, i));
      }
      built_ = true;
    }
    return cache_[t];
  }
  scratch_ = TetGeometry::compute(*mesh_, t);
  return scratch_;
}

ElementKernel::ElementKernel(const FeSpace& space, int quad_degree)
    : space_(&space),
      table_(&space.shape_table(quad_degree)),
      geo_(space.mesh()) {}

void ElementKernel::mass(std::size_t t, std::span<double> out) const {
  const int n = table_->dofs;
  HETERO_REQUIRE(static_cast<int>(out.size()) == n * n,
                 "mass: output span size mismatch");
  const auto& geo = geometry(t);
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t nq = table_->points.size();
  for (std::size_t q = 0; q < nq; ++q) {
    const double w = table_->points[q].weight * geo.det;
    const auto& phi = table_->values[q];
    for (int i = 0; i < n; ++i) {
      const double wi = w * phi[static_cast<std::size_t>(i)];
      for (int j = 0; j < n; ++j) {
        out[static_cast<std::size_t>(i * n + j)] +=
            wi * phi[static_cast<std::size_t>(j)];
      }
    }
  }
  const auto nn = static_cast<double>(n);
  fem_work().add(static_cast<double>(nq) * (1.0 + nn * (1.0 + 2.0 * nn)),
                 8.0 * nn * nn);
}

void ElementKernel::lumped_mass(std::size_t t, std::span<double> out) const {
  const int n = table_->dofs;
  HETERO_REQUIRE(static_cast<int>(out.size()) == n,
                 "lumped_mass: output span size mismatch");
  const auto& geo = geometry(t);
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t nq = table_->points.size();
  for (std::size_t q = 0; q < nq; ++q) {
    const double w = table_->points[q].weight * geo.det;
    for (int i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] +=
          w * table_->values[q][static_cast<std::size_t>(i)];
    }
  }
  fem_work().add(static_cast<double>(nq) * (1.0 + 2.0 * n),
                 8.0 * static_cast<double>(n));
}

void ElementKernel::stiffness(std::size_t t, std::span<double> out) const {
  const int n = table_->dofs;
  HETERO_REQUIRE(static_cast<int>(out.size()) == n * n,
                 "stiffness: output span size mismatch");
  const auto& geo = geometry(t);
  std::fill(out.begin(), out.end(), 0.0);
  std::array<mesh::Vec3, kP2Dofs> grad{};
  const std::size_t nq = table_->points.size();
  for (std::size_t q = 0; q < nq; ++q) {
    const double w = table_->points[q].weight * geo.det;
    for (int i = 0; i < n; ++i) {
      grad[static_cast<std::size_t>(i)] =
          geo.physical_grad(table_->grads[q][static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        out[static_cast<std::size_t>(i * n + j)] +=
            w * grad[static_cast<std::size_t>(i)].dot(
                    grad[static_cast<std::size_t>(j)]);
      }
    }
  }
  const auto nn = static_cast<double>(n);
  fem_work().add(static_cast<double>(nq) * (1.0 + 15.0 * nn + 7.0 * nn * nn),
                 8.0 * nn * nn);
}

void ElementKernel::convection(std::size_t t,
                               std::span<const mesh::Vec3> beta_at_quad,
                               std::span<double> out) const {
  const int n = table_->dofs;
  HETERO_REQUIRE(static_cast<int>(out.size()) == n * n,
                 "convection: output span size mismatch");
  HETERO_REQUIRE(beta_at_quad.size() == table_->points.size(),
                 "convection: one beta per quadrature point required");
  const auto& geo = geometry(t);
  std::fill(out.begin(), out.end(), 0.0);
  std::array<mesh::Vec3, kP2Dofs> grad{};
  const std::size_t nq = table_->points.size();
  for (std::size_t q = 0; q < nq; ++q) {
    const double w = table_->points[q].weight * geo.det;
    const auto& phi = table_->values[q];
    for (int j = 0; j < n; ++j) {
      grad[static_cast<std::size_t>(j)] =
          geo.physical_grad(table_->grads[q][static_cast<std::size_t>(j)]);
    }
    for (int i = 0; i < n; ++i) {
      const double wi = w * phi[static_cast<std::size_t>(i)];
      for (int j = 0; j < n; ++j) {
        out[static_cast<std::size_t>(i * n + j)] +=
            wi * beta_at_quad[q].dot(grad[static_cast<std::size_t>(j)]);
      }
    }
  }
  const auto nn = static_cast<double>(n);
  fem_work().add(static_cast<double>(nq) * (1.0 + 16.0 * nn + 7.0 * nn * nn),
                 8.0 * nn * nn);
}

void ElementKernel::load(std::size_t t, const SpatialFn& f,
                         std::span<double> out) const {
  const int n = table_->dofs;
  HETERO_REQUIRE(static_cast<int>(out.size()) == n,
                 "load: output span size mismatch");
  const auto& geo = geometry(t);
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t nq = table_->points.size();
  for (std::size_t q = 0; q < nq; ++q) {
    const double w = table_->points[q].weight * geo.det;
    const double fq = f(geo.map_point(table_->points[q].xi));
    const auto& phi = table_->values[q];
    for (int i = 0; i < n; ++i) {
      out[static_cast<std::size_t>(i)] +=
          w * fq * phi[static_cast<std::size_t>(i)];
    }
  }
  fem_work().add(static_cast<double>(nq) * (10.0 + 3.0 * n),
                 8.0 * static_cast<double>(n));
}

void ElementKernel::mass_stiffness_load(std::size_t t, const SpatialFn& f,
                                        std::span<double> mout,
                                        std::span<double> kout,
                                        std::span<double> fout) const {
  if (la::kernel_mode() == la::KernelMode::kReference) {
    mass(t, mout);
    stiffness(t, kout);
    load(t, f, fout);
    return;
  }
  const int n = table_->dofs;
  HETERO_REQUIRE(static_cast<int>(mout.size()) == n * n &&
                     static_cast<int>(kout.size()) == n * n &&
                     static_cast<int>(fout.size()) == n,
                 "mass_stiffness_load: output span size mismatch");
  const auto& geo = geometry(t);
  std::fill(mout.begin(), mout.end(), 0.0);
  std::fill(kout.begin(), kout.end(), 0.0);
  std::fill(fout.begin(), fout.end(), 0.0);
  std::array<mesh::Vec3, kP2Dofs> grad{};
  const std::size_t nq = table_->points.size();
  // One sweep over quadrature points; each output entry accumulates its
  // terms in ascending-q order exactly like the separate kernels, so the
  // results are bit-identical.
  for (std::size_t q = 0; q < nq; ++q) {
    const double w = table_->points[q].weight * geo.det;
    const auto& phi = table_->values[q];
    const double fq = f(geo.map_point(table_->points[q].xi));
    for (int i = 0; i < n; ++i) {
      grad[static_cast<std::size_t>(i)] =
          geo.physical_grad(table_->grads[q][static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < n; ++i) {
      const double wi = w * phi[static_cast<std::size_t>(i)];
      for (int j = 0; j < n; ++j) {
        mout[static_cast<std::size_t>(i * n + j)] +=
            wi * phi[static_cast<std::size_t>(j)];
        kout[static_cast<std::size_t>(i * n + j)] +=
            w * grad[static_cast<std::size_t>(i)].dot(
                    grad[static_cast<std::size_t>(j)]);
      }
      fout[static_cast<std::size_t>(i)] +=
          w * fq * phi[static_cast<std::size_t>(i)];
    }
  }
  const auto nn = static_cast<double>(n);
  fem_work().add(
      static_cast<double>(nq) * (11.0 + 19.0 * nn + 9.0 * nn * nn),
      8.0 * (2.0 * nn * nn + nn));
}

void ElementKernel::deriv(std::size_t t, int axis,
                          std::span<double> out) const {
  const int n = table_->dofs;
  HETERO_REQUIRE(static_cast<int>(out.size()) == n * n,
                 "deriv: output span size mismatch");
  HETERO_REQUIRE(axis >= 0 && axis < 3, "deriv: axis must be 0, 1 or 2");
  const auto& geo = geometry(t);
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t nq = table_->points.size();
  for (std::size_t q = 0; q < nq; ++q) {
    const double w = table_->points[q].weight * geo.det;
    const auto& phi = table_->values[q];
    for (int j = 0; j < n; ++j) {
      const mesh::Vec3 g =
          geo.physical_grad(table_->grads[q][static_cast<std::size_t>(j)]);
      const double gj = axis == 0 ? g.x : axis == 1 ? g.y : g.z;
      for (int i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i * n + j)] +=
            w * phi[static_cast<std::size_t>(i)] * gj;
      }
    }
  }
  const auto nn = static_cast<double>(n);
  fem_work().add(static_cast<double>(nq) * (1.0 + 15.0 * nn + 3.0 * nn * nn),
                 8.0 * nn * nn);
}

void ElementKernel::quad_points(std::size_t t,
                                std::span<mesh::Vec3> out) const {
  HETERO_REQUIRE(out.size() == table_->points.size(),
                 "quad_points: output span size mismatch");
  const auto& geo = geometry(t);
  for (std::size_t q = 0; q < table_->points.size(); ++q) {
    out[q] = geo.map_point(table_->points[q].xi);
  }
}

void ElementKernel::eval_at_quad(std::size_t t,
                                 std::span<const double> dof_values,
                                 std::span<double> out) const {
  HETERO_REQUIRE(out.size() == table_->points.size(),
                 "eval_at_quad: output span size mismatch");
  const auto dofs = space_->tet_dofs(t);
  for (std::size_t q = 0; q < table_->points.size(); ++q) {
    double acc = 0.0;
    for (std::size_t i = 0; i < dofs.size(); ++i) {
      acc += table_->values[q][i] *
             dof_values[static_cast<std::size_t>(dofs[i])];
    }
    out[q] = acc;
  }
}

void ElementKernel::eval_grad_at_quad(std::size_t t,
                                      std::span<const double> dof_values,
                                      std::span<mesh::Vec3> out) const {
  HETERO_REQUIRE(out.size() == table_->points.size(),
                 "eval_grad_at_quad: output span size mismatch");
  const auto& geo = geometry(t);
  const auto dofs = space_->tet_dofs(t);
  for (std::size_t q = 0; q < table_->points.size(); ++q) {
    mesh::Vec3 acc;
    for (std::size_t i = 0; i < dofs.size(); ++i) {
      acc = acc + table_->grads[q][i] *
                      dof_values[static_cast<std::size_t>(dofs[i])];
    }
    out[q] = geo.physical_grad(acc);
  }
}

MixedElementKernel::MixedElementKernel(const FeSpace& row_space,
                                       const FeSpace& col_space,
                                       int quad_degree)
    : row_(&row_space),
      col_(&col_space),
      row_table_(&row_space.shape_table(quad_degree)),
      col_table_(&col_space.shape_table(quad_degree)),
      geo_(row_space.mesh()) {
  HETERO_REQUIRE(&row_space.mesh() == &col_space.mesh(),
                 "mixed kernel spaces must share one mesh");
}

void MixedElementKernel::grad_row_times_col(std::size_t t, int axis,
                                            std::span<double> out) const {
  const int nr = row_table_->dofs;
  const int nc = col_table_->dofs;
  HETERO_REQUIRE(static_cast<int>(out.size()) == nr * nc,
                 "grad_row_times_col: output span size mismatch");
  HETERO_REQUIRE(axis >= 0 && axis < 3, "axis must be 0, 1 or 2");
  const auto& geo = geo_.get(t);
  std::fill(out.begin(), out.end(), 0.0);
  const std::size_t nq = row_table_->points.size();
  for (std::size_t q = 0; q < nq; ++q) {
    const double w = row_table_->points[q].weight * geo.det;
    const auto& psi = col_table_->values[q];
    for (int i = 0; i < nr; ++i) {
      const mesh::Vec3 g =
          geo.physical_grad(row_table_->grads[q][static_cast<std::size_t>(i)]);
      const double gi = axis == 0 ? g.x : axis == 1 ? g.y : g.z;
      for (int j = 0; j < nc; ++j) {
        out[static_cast<std::size_t>(i * nc + j)] +=
            w * gi * psi[static_cast<std::size_t>(j)];
      }
    }
  }
  fem_work().add(static_cast<double>(nq) *
                     (1.0 + 16.0 * nr + 2.0 * static_cast<double>(nr) * nc),
                 8.0 * static_cast<double>(nr) * nc);
}

}  // namespace hetero::fem
