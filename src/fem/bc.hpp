#pragma once

/// \file bc.hpp
/// Dirichlet boundary conditions with symmetric elimination: constrained
/// rows become identity, and constrained *columns* are folded into the
/// right-hand side so symmetric operators stay symmetric (CG-compatible).
/// Constraint flags/values of ghost columns are fetched from their owners
/// through the halo — one extra exchange per application.

#include <functional>

#include "fem/fe_space.hpp"
#include "la/dist_matrix.hpp"
#include "la/system_builder.hpp"

namespace hetero::fem {

/// Geometric predicate selecting constrained dofs, and the boundary value.
using BoundaryPredicate = std::function<bool(const mesh::Vec3&)>;
using BoundaryValueFn = std::function<double(const mesh::Vec3&)>;

/// Per-local-dof constraint data aligned with an IndexMap.
struct DirichletData {
  la::DistVector flags;   // 1.0 constrained, 0.0 free (ghosts refreshed)
  la::DistVector values;  // boundary value where constrained

  DirichletData(const la::IndexMap& map)
      : flags(map), values(map) {}
};

/// Builds constraint data for the scalar `space`: every owned dof whose
/// coordinate satisfies `on_boundary` is constrained to `g(coord)`.
/// Collective (refreshes ghosts).
DirichletData make_dirichlet(simmpi::Comm& comm, const FeSpace& space,
                             const la::IndexMap& map,
                             const la::HaloExchange& halo,
                             const BoundaryPredicate& on_boundary,
                             const BoundaryValueFn& g);

/// Same for a block system of `ncomp` components: `g_comp(coord, c)` gives
/// the value of component c; `constrained_comp(coord, c)` selects which
/// components are constrained at a boundary location.
DirichletData make_dirichlet_block(
    simmpi::Comm& comm, const FeSpace& space, const la::IndexMap& map,
    const la::HaloExchange& halo, int ncomp,
    const BoundaryPredicate& on_boundary,
    const std::function<bool(const mesh::Vec3&, int)>& constrained_comp,
    const std::function<double(const mesh::Vec3&, int)>& g_comp);

/// Applies symmetric elimination to the assembled system in place and sets
/// the constrained entries of `x` (initial guess) to the boundary values.
void apply_dirichlet(la::DistCsrMatrix& a, la::DistVector& rhs,
                     la::DistVector& x, const DirichletData& bc);

}  // namespace hetero::fem
