#pragma once

/// \file bc.hpp
/// Dirichlet boundary conditions with symmetric elimination: constrained
/// rows become identity, and constrained *columns* are folded into the
/// right-hand side so symmetric operators stay symmetric (CG-compatible).
/// Constraint flags/values of ghost columns are fetched from their owners
/// through the halo — one extra exchange per application.
///
/// Time-dependent problems rebuild the same constraint set every step;
/// DirichletPlan amortizes that by freezing the constrained dof set (and
/// its flags exchange) at construction and refreshing only the values.

#include <cstdint>
#include <functional>
#include <vector>

#include "fem/fe_space.hpp"
#include "la/dist_matrix.hpp"
#include "la/system_builder.hpp"

namespace hetero::fem {

/// Geometric predicate selecting constrained dofs, and the boundary value.
using BoundaryPredicate = std::function<bool(const mesh::Vec3&)>;
using BoundaryValueFn = std::function<double(const mesh::Vec3&)>;

/// Per-local-dof constraint data aligned with an IndexMap.
struct DirichletData {
  la::DistVector flags;   // 1.0 constrained, 0.0 free (ghosts refreshed)
  la::DistVector values;  // boundary value where constrained

  DirichletData(const la::IndexMap& map)
      : flags(map), values(map) {}
};

/// Builds constraint data for the scalar `space`: every owned dof whose
/// coordinate satisfies `on_boundary` is constrained to `g(coord)`.
/// Collective (refreshes ghosts).
DirichletData make_dirichlet(simmpi::Comm& comm, const FeSpace& space,
                             const la::IndexMap& map,
                             const la::HaloExchange& halo,
                             const BoundaryPredicate& on_boundary,
                             const BoundaryValueFn& g);

/// Same for a block system of `ncomp` components: `g_comp(coord, c)` gives
/// the value of component c; `constrained_comp(coord, c)` selects which
/// components are constrained at a boundary location.
DirichletData make_dirichlet_block(
    simmpi::Comm& comm, const FeSpace& space, const la::IndexMap& map,
    const la::HaloExchange& halo, int ncomp,
    const BoundaryPredicate& on_boundary,
    const std::function<bool(const mesh::Vec3&, int)>& constrained_comp,
    const std::function<double(const mesh::Vec3&, int)>& g_comp);

/// Applies symmetric elimination to the assembled system in place and sets
/// the constrained entries of `x` (initial guess) to the boundary values.
void apply_dirichlet(la::DistCsrMatrix& a, la::DistVector& rhs,
                     la::DistVector& x, const DirichletData& bc);

/// Precomputed Dirichlet constraints for time-dependent problems.
///
/// The constrained dof set is purely geometric, so the plan records it —
/// and exchanges the constraint flags — once at construction; update()
/// then refreshes only the boundary *values* each step with a single ghost
/// exchange, where the reference path (make_dirichlet) allocates two fresh
/// DistVectors, re-evaluates the predicate over every dof and exchanges
/// both vectors. apply() additionally caches the CSR slots touched by the
/// symmetric elimination after its first call. The resulting data and
/// eliminated system are bit-identical to make_dirichlet + apply_dirichlet.
class DirichletPlan {
 public:
  /// Scalar variant; collective (exchanges the static flags once).
  DirichletPlan(simmpi::Comm& comm, const FeSpace& space,
                const la::IndexMap& map, const la::HaloExchange& halo,
                const BoundaryPredicate& on_boundary);

  /// Block variant for `ncomp`-component systems.
  DirichletPlan(
      simmpi::Comm& comm, const FeSpace& space, const la::IndexMap& map,
      const la::HaloExchange& halo, int ncomp,
      const BoundaryPredicate& on_boundary,
      const std::function<bool(const mesh::Vec3&, int)>& constrained_comp);

  /// Caller-driven variant for composite constraint sets spanning several
  /// spaces over one map (the NS velocity-wall + pressure-pin case):
  /// `collect` is invoked once with an `add(lid, coord, comp)` sink and
  /// must report every owned constrained dof, in a rank-deterministic
  /// order. Collective.
  DirichletPlan(simmpi::Comm& comm, const la::IndexMap& map,
                const la::HaloExchange& halo,
                const std::function<void(const std::function<void(
                    int, const mesh::Vec3&, int)>&)>& collect);

  /// Refreshes the boundary values for the current time; collective.
  void update(simmpi::Comm& comm, const la::HaloExchange& halo,
              const BoundaryValueFn& g);

  /// Block-system value refresh: values come from `g_comp(coord, comp)`.
  void update_block(
      simmpi::Comm& comm, const la::HaloExchange& halo,
      const std::function<double(const mesh::Vec3&, int)>& g_comp);

  /// Flags/values aligned with the IndexMap, as make_dirichlet returns.
  const DirichletData& data() const { return data_; }

  /// Symmetric elimination through cached slot lists (built on the first
  /// call; the matrix sparsity pattern must not change between calls).
  void apply(la::DistCsrMatrix& a, la::DistVector& rhs, la::DistVector& x);

  /// Number of owned constrained dofs on this rank.
  std::size_t constrained_count() const { return entries_.size(); }

 private:
  struct Entry {
    int lid = 0;   // owned local index in the IndexMap
    int comp = 0;  // component (block variant; 0 for scalar)
    mesh::Vec3 coord;
  };

  void build_apply_plan(const la::CsrMatrix& m);

  std::vector<Entry> entries_;
  DirichletData data_;

  // Cached elimination structure (fast mode; lazily built from the frozen
  // matrix pattern). Identity writes and rhs folds are replayed in the
  // exact row/slot order of apply_dirichlet.
  bool apply_built_ = false;
  std::vector<std::int32_t> ident_rows_;   // constrained owned rows
  std::vector<std::int64_t> ident_slots_;  // slots inside constrained rows
  std::vector<double> ident_vals_;         // 1.0 on diagonal, 0.0 elsewhere
  std::vector<std::int32_t> fold_rows_;    // free rows with constrained cols
  std::vector<std::int64_t> fold_slots_;
  std::vector<std::int32_t> fold_cols_;
};

}  // namespace hetero::fem
