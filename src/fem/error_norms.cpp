#include "fem/error_norms.hpp"

#include <cmath>

#include "support/error.hpp"

namespace hetero::fem {

la::DistVector interpolate(simmpi::Comm& comm, const FeSpace& space,
                           const la::IndexMap& map,
                           const la::HaloExchange& halo, const SpatialFn& f) {
  la::DistVector u(map);
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const int l = map.local(space.dof_gid(d));
    if (l != la::kInvalidLocal) {
      u[l] = f(space.dof_coord(d));
    }
  }
  // Ghosts not belonging to this rank's elements get their values from the
  // owners (which always have them locally).
  u.update_ghosts(comm, halo);
  return u;
}

std::vector<double> space_values(const FeSpace& space,
                                 const la::IndexMap& map,
                                 const la::DistVector& u) {
  std::vector<double> out(static_cast<std::size_t>(space.local_dof_count()),
                          0.0);
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const int l = map.local(space.dof_gid(d));
    HETERO_REQUIRE(l != la::kInvalidLocal,
                   "space_values: dof missing from the index map");
    out[static_cast<std::size_t>(d)] = u[l];
  }
  return out;
}

double l2_error(simmpi::Comm& comm, const ElementKernel& kernel,
                const la::IndexMap& map, const la::DistVector& u,
                const SpatialFn& exact) {
  const FeSpace& space = kernel.space();
  const std::vector<double> values = space_values(space, map, u);
  const std::size_t nq = kernel.quad_count();
  std::vector<double> uh(nq);
  std::vector<mesh::Vec3> xq(nq);
  double local = 0.0;
  for (std::size_t t = 0; t < space.mesh().tet_count(); ++t) {
    kernel.eval_at_quad(t, values, uh);
    kernel.quad_points(t, xq);
    const auto geo = TetGeometry::compute(space.mesh(), t);
    for (std::size_t q = 0; q < nq; ++q) {
      const double diff = uh[q] - exact(xq[q]);
      local += kernel.table().points[q].weight * geo.det * diff * diff;
    }
  }
  return std::sqrt(comm.allreduce(local, simmpi::ReduceOp::kSum));
}

double h1_seminorm_error(simmpi::Comm& comm, const ElementKernel& kernel,
                         const la::IndexMap& map, const la::DistVector& u,
                         const VectorFn& grad_exact) {
  const FeSpace& space = kernel.space();
  const std::vector<double> values = space_values(space, map, u);
  const std::size_t nq = kernel.quad_count();
  std::vector<mesh::Vec3> grad_h(nq);
  std::vector<mesh::Vec3> xq(nq);
  double local = 0.0;
  for (std::size_t t = 0; t < space.mesh().tet_count(); ++t) {
    kernel.eval_grad_at_quad(t, values, grad_h);
    kernel.quad_points(t, xq);
    const auto geo = TetGeometry::compute(space.mesh(), t);
    for (std::size_t q = 0; q < nq; ++q) {
      const mesh::Vec3 diff = grad_h[q] - grad_exact(xq[q]);
      local += kernel.table().points[q].weight * geo.det * diff.norm2();
    }
  }
  return std::sqrt(comm.allreduce(local, simmpi::ReduceOp::kSum));
}

double nodal_max_error(simmpi::Comm& comm, const FeSpace& space,
                       const la::IndexMap& map, const la::DistVector& u,
                       const SpatialFn& exact) {
  double local = 0.0;
  for (int d = 0; d < space.local_dof_count(); ++d) {
    const int l = map.local(space.dof_gid(d));
    if (l == la::kInvalidLocal || !map.is_owned_local(l)) {
      continue;
    }
    local = std::max(local, std::fabs(u[l] - exact(space.dof_coord(d))));
  }
  return comm.allreduce(local, simmpi::ReduceOp::kMax);
}

}  // namespace hetero::fem
