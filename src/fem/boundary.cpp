#include "fem/boundary.hpp"

#include <algorithm>

#include "mesh/edges.hpp"
#include "support/error.hpp"

namespace hetero::fem {

const std::vector<TriQuadPoint>& tri_quadrature(int degree) {
  static const std::vector<TriQuadPoint> d1 = {
      {1.0 / 3.0, 1.0 / 3.0, 0.5},
  };
  static const std::vector<TriQuadPoint> d2 = {
      // Edge-midpoint rule, degree 2.
      {0.5, 0.0, 1.0 / 6.0},
      {0.5, 0.5, 1.0 / 6.0},
      {0.0, 0.5, 1.0 / 6.0},
  };
  static const std::vector<TriQuadPoint> d4 = [] {
    // Cowper 6-point, degree 4 (weights normalized to area 1/2).
    const double a1 = 0.445948490915965;
    const double w1 = 0.223381589678011 / 2.0;
    const double a2 = 0.091576213509771;
    const double w2 = 0.109951743655322 / 2.0;
    std::vector<TriQuadPoint> pts;
    pts.push_back({a1, a1, w1});
    pts.push_back({1.0 - 2.0 * a1, a1, w1});
    pts.push_back({a1, 1.0 - 2.0 * a1, w1});
    pts.push_back({a2, a2, w2});
    pts.push_back({1.0 - 2.0 * a2, a2, w2});
    pts.push_back({a2, 1.0 - 2.0 * a2, w2});
    return pts;
  }();
  switch (degree) {
    case 0:
    case 1: return d1;
    case 2: return d2;
    case 3:
    case 4: return d4;
    default:
      throw Error("tri_quadrature: unsupported degree (max 4)");
  }
}

namespace {

/// P2 shape values on the reference triangle: 3 vertices then the 3 edge
/// bubbles on edges (0,1), (1,2), (0,2).
std::array<double, 6> tri_p2_values(double x, double y) {
  const double l0 = 1.0 - x - y;
  const double l1 = x;
  const double l2 = y;
  return {l0 * (2 * l0 - 1), l1 * (2 * l1 - 1), l2 * (2 * l2 - 1),
          4 * l0 * l1, 4 * l1 * l2, 4 * l0 * l2};
}

}  // namespace

void assemble_boundary_load(const FeSpace& space, const SpatialFn& g,
                            const std::vector<int>& markers,
                            la::DistSystemBuilder& builder,
                            int quad_degree) {
  const mesh::TetMesh& mesh = space.mesh();
  const auto& rule = tri_quadrature(quad_degree);
  const bool p2 = space.order() == 2;

  for (const auto& face : mesh.boundary_faces()) {
    if (!markers.empty() &&
        std::find(markers.begin(), markers.end(), face.marker) ==
            markers.end()) {
      continue;
    }
    const mesh::Vec3& a = mesh.vertex(face.vertices[0]);
    const mesh::Vec3& b = mesh.vertex(face.vertices[1]);
    const mesh::Vec3& c = mesh.vertex(face.vertices[2]);
    const double double_area = (b - a).cross(c - a).norm();
    HETERO_REQUIRE(double_area > 0.0, "degenerate boundary face");

    // Face dof gids: vertices, then (for P2) the three edge midpoints in
    // the (0,1), (1,2), (0,2) order matching tri_p2_values.
    la::GlobalId gids[6];
    for (int v = 0; v < 3; ++v) {
      gids[v] = mesh.vertex_gid(face.vertices[static_cast<std::size_t>(v)]);
    }
    int n = 3;
    std::array<mesh::Vec3, 3> verts{a, b, c};
    if (p2) {
      // Edge dof gids come from the same formula the FeSpace used, keyed by
      // the global vertex count it was built with.
      n = 6;
      const auto pair = [&](int u, int v) {
        return mesh::edge_gid(gids[u], gids[v], space.global_vertex_count());
      };
      gids[3] = pair(0, 1);
      gids[4] = pair(1, 2);
      gids[5] = pair(0, 2);
    }

    double fe[6] = {0, 0, 0, 0, 0, 0};
    for (const auto& qp : rule) {
      const double l0 = 1.0 - qp.x - qp.y;
      const mesh::Vec3 xq = verts[0] * l0 + verts[1] * qp.x + verts[2] * qp.y;
      const double gq = g(xq);
      // Weights are for the reference area 1/2; |J| of the affine map is
      // double_area, so w * |J| integrates over the physical triangle.
      const double w = qp.weight * double_area;
      if (p2) {
        const auto phi = tri_p2_values(qp.x, qp.y);
        for (int i = 0; i < 6; ++i) {
          fe[i] += w * gq * phi[static_cast<std::size_t>(i)];
        }
      } else {
        fe[0] += w * gq * l0;
        fe[1] += w * gq * qp.x;
        fe[2] += w * gq * qp.y;
      }
    }
    for (int i = 0; i < n; ++i) {
      builder.add_rhs(gids[i], fe[i]);
    }
  }
}

double boundary_area(const mesh::TetMesh& mesh,
                     const std::vector<int>& markers) {
  double area = 0.0;
  for (const auto& face : mesh.boundary_faces()) {
    if (!markers.empty() &&
        std::find(markers.begin(), markers.end(), face.marker) ==
            markers.end()) {
      continue;
    }
    const mesh::Vec3& a = mesh.vertex(face.vertices[0]);
    const mesh::Vec3& b = mesh.vertex(face.vertices[1]);
    const mesh::Vec3& c = mesh.vertex(face.vertices[2]);
    area += 0.5 * (b - a).cross(c - a).norm();
  }
  return area;
}

}  // namespace hetero::fem
