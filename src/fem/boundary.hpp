#pragma once

/// \file boundary.hpp
/// Surface integrals over boundary faces: Neumann/flux contributions
/// int_Gamma g phi dS assembled into the right-hand side. Supports P1 and
/// P2 traces; faces are selected by their box-side marker (1..6).

#include <vector>

#include "fem/assembler.hpp"
#include "la/system_builder.hpp"

namespace hetero::fem {

/// One quadrature point on the reference triangle (barycentric l0, l1, l2
/// = 1-x-y, x, y) with weight; weights sum to the reference area 1/2.
struct TriQuadPoint {
  double x = 0.0;
  double y = 0.0;
  double weight = 0.0;
};

/// Triangle rules: degree 1 (centroid), 2 (edge midpoints), 4 (Cowper 6pt).
const std::vector<TriQuadPoint>& tri_quadrature(int degree);

/// Adds int_{Gamma_m} g phi_i dS to the builder's rhs for every boundary
/// face of the space's mesh whose marker is in `markers` (empty = all).
/// Must be called between begin_assembly() and finalize(). The face trace
/// uses the space's own order (P1: 3 vertex dofs; P2: + 3 edge dofs).
void assemble_boundary_load(const FeSpace& space, const SpatialFn& g,
                            const std::vector<int>& markers,
                            la::DistSystemBuilder& builder,
                            int quad_degree = 4);

/// Total area of the selected boundary faces (rank-local; reduce yourself).
double boundary_area(const mesh::TetMesh& mesh,
                     const std::vector<int>& markers);

}  // namespace hetero::fem
