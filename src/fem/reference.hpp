#pragma once

/// \file reference.hpp
/// Reference tetrahedron: P1/P2 Lagrange shape functions and Gauss-type
/// quadrature rules (Keast) up to polynomial degree 4 — enough for exact P2
/// mass matrices, which the reaction–diffusion exactness oracle relies on.
///
/// Reference element: vertices (0,0,0), (1,0,0), (0,1,0), (0,0,1);
/// barycentric coordinates l0 = 1-x-y-z, l1 = x, l2 = y, l3 = z.
/// P2 dof order: 4 vertex functions, then 6 edge bubbles in the canonical
/// mesh::kTetEdgeVertices order.

#include <array>
#include <vector>

#include "mesh/geometry.hpp"

namespace hetero::fem {

/// One quadrature point in reference coordinates with weight (weights sum
/// to the reference volume 1/6).
struct QuadPoint {
  mesh::Vec3 xi;
  double weight = 0.0;
};

/// Returns the lightest Keast rule integrating polynomials of `degree`
/// exactly (supported: 1..4). Throws for higher degrees.
const std::vector<QuadPoint>& tet_quadrature(int degree);

/// Number of scalar shape functions: 4 (P1) or 10 (P2).
inline constexpr int kP1Dofs = 4;
inline constexpr int kP2Dofs = 10;

/// Values of the P1 shape functions at `xi`.
std::array<double, 4> p1_values(const mesh::Vec3& xi);
/// Reference-space gradients of the P1 shape functions (constant).
std::array<mesh::Vec3, 4> p1_gradients();

/// Values of the P2 shape functions at `xi`.
std::array<double, 10> p2_values(const mesh::Vec3& xi);
/// Reference-space gradients of the P2 shape functions at `xi`.
std::array<mesh::Vec3, 10> p2_gradients(const mesh::Vec3& xi);

/// Pre-tabulated shapes at every point of a quadrature rule.
struct ShapeTable {
  int dofs = 0;                                  // 4 or 10
  std::vector<QuadPoint> points;
  std::vector<std::vector<double>> values;       // [q][dof]
  std::vector<std::vector<mesh::Vec3>> grads;    // [q][dof], reference space
};

/// Builds the table for P1 (order 1) or P2 (order 2) at the rule of
/// `quad_degree`.
ShapeTable build_shape_table(int order, int quad_degree);

}  // namespace hetero::fem
