#pragma once

/// \file assembler.hpp
/// Per-element dense kernels (mass, stiffness, convection, load) and their
/// evaluation machinery — the paper's assembly phase (step ii). Applications
/// combine these into global distributed systems through
/// la::DistSystemBuilder.
///
/// Under la::KernelMode::kFast the kernels read tet geometries from a
/// per-kernel cache filled once (the mesh never moves) instead of
/// recomputing the Jacobian factorization on every call, and
/// mass_stiffness_load() evaluates all three RD element quantities in a
/// single quadrature sweep. Per-entry accumulation order is unchanged, so
/// element matrices are bit-identical to the reference kernels.

#include <functional>
#include <span>
#include <vector>

#include "fem/fe_space.hpp"
#include "fem/reference.hpp"

namespace hetero::fem {

/// Affine geometry of one tetrahedron.
struct TetGeometry {
  /// Columns of J^{-T}: maps reference gradients to physical gradients.
  mesh::Vec3 jinv_t[3];
  /// |det J| = 6 * volume.
  double det = 0.0;
  mesh::Vec3 origin;   // vertex 0
  mesh::Vec3 edges[3]; // vertex i+1 - vertex 0

  static TetGeometry compute(const mesh::TetMesh& mesh, std::size_t t);

  mesh::Vec3 physical_grad(const mesh::Vec3& ref_grad) const {
    return jinv_t[0] * ref_grad.x + jinv_t[1] * ref_grad.y +
           jinv_t[2] * ref_grad.z;
  }
  mesh::Vec3 map_point(const mesh::Vec3& xi) const {
    return origin + edges[0] * xi.x + edges[1] * xi.y + edges[2] * xi.z;
  }
};

/// Scalar field sampled in space (and optionally time by the caller).
using SpatialFn = std::function<double(const mesh::Vec3&)>;
using VectorFn = std::function<mesh::Vec3(const mesh::Vec3&)>;

/// Per-mesh cache of affine tet geometries. Fast mode tabulates every tet
/// once on first use (the mesh is static for the life of a kernel);
/// reference mode recomputes per call exactly like the original kernels.
/// Either way the values come from the same TetGeometry::compute, so the
/// two modes are bit-identical.
class GeometryCache {
 public:
  explicit GeometryCache(const mesh::TetMesh& mesh) : mesh_(&mesh) {}

  const TetGeometry& get(std::size_t t) const;

 private:
  const mesh::TetMesh* mesh_;
  mutable std::vector<TetGeometry> cache_;  // fast mode: all tets
  mutable bool built_ = false;
  mutable TetGeometry scratch_;  // reference mode: per-call recompute
};

/// Dense element kernels over one FeSpace; all outputs are row-major
/// n×n (matrices) or length-n (vectors) with n = space.dofs_per_tet().
class ElementKernel {
 public:
  /// `quad_degree` must integrate the strongest product exactly; P2 mass
  /// needs 4, P1 work needs 2.
  ElementKernel(const FeSpace& space, int quad_degree);

  const FeSpace& space() const { return *space_; }
  int n() const { return table_->dofs; }
  std::size_t quad_count() const { return table_->points.size(); }

  /// out(i,j) += sum_q w |J| phi_i phi_j  (set semantics: out overwritten).
  void mass(std::size_t t, std::span<double> out) const;

  /// Row-sum lumped mass: out(i) = sum_j M(i,j) = int phi_i. Diagonal
  /// approximation used for cheap L2 projections; conserves total volume.
  void lumped_mass(std::size_t t, std::span<double> out) const;

  /// out(i,j) = sum_q w |J| grad phi_i . grad phi_j.
  void stiffness(std::size_t t, std::span<double> out) const;

  /// out(i,j) = sum_q w |J| (beta(x_q) . grad phi_j) phi_i.
  void convection(std::size_t t, std::span<const mesh::Vec3> beta_at_quad,
                  std::span<double> out) const;

  /// out(i) = sum_q w |J| f(x_q) phi_i.
  void load(std::size_t t, const SpatialFn& f, std::span<double> out) const;

  /// Evaluates mass, stiffness and load for tet `t` in a single quadrature
  /// sweep (one geometry fetch, one pass over quadrature points). Entry
  /// accumulation order matches the separate kernels, so the outputs are
  /// bit-identical; reference mode simply calls the three kernels.
  void mass_stiffness_load(std::size_t t, const SpatialFn& f,
                           std::span<double> mout, std::span<double> kout,
                           std::span<double> fout) const;

  /// out(i,j) = sum_q w |J| phi_i  d(phi_j)/d(x_axis) — the pressure
  /// gradient / divergence coupling blocks of mixed formulations.
  void deriv(std::size_t t, int axis, std::span<double> out) const;

  /// Physical coordinates of the quadrature points of tet `t`.
  void quad_points(std::size_t t, std::span<mesh::Vec3> out) const;

  /// Values at quadrature points of the FE function whose *space-local* dof
  /// values are `dof_values` (indexed like FeSpace dofs).
  void eval_at_quad(std::size_t t, std::span<const double> dof_values,
                    std::span<double> out) const;

  /// Gradients at quadrature points of the same FE function.
  void eval_grad_at_quad(std::size_t t, std::span<const double> dof_values,
                         std::span<mesh::Vec3> out) const;

  const ShapeTable& table() const { return *table_; }

 private:
  const TetGeometry& geometry(std::size_t t) const { return geo_.get(t); }

  const FeSpace* space_;
  const ShapeTable* table_;  // owned by the FeSpace shape-table cache
  GeometryCache geo_;
};

/// Coupling kernels between two spaces on the same mesh (mixed velocity /
/// pressure formulations: Taylor-Hood P2/P1 or equal-order P1/P1).
class MixedElementKernel {
 public:
  /// Both spaces must be built over the same mesh object.
  MixedElementKernel(const FeSpace& row_space, const FeSpace& col_space,
                     int quad_degree);

  int rows() const { return row_table_->dofs; }
  int cols() const { return col_table_->dofs; }

  /// out(i,j) = sum_q w |J| d(phi^row_i)/d(x_axis) psi^col_j — the
  /// divergence/pressure-gradient coupling: with row = velocity and col =
  /// pressure this is B(i,j); its transpose enters the continuity rows.
  void grad_row_times_col(std::size_t t, int axis,
                          std::span<double> out) const;

 private:
  const FeSpace* row_;
  const FeSpace* col_;
  const ShapeTable* row_table_;  // owned by the row space's cache
  const ShapeTable* col_table_;
  GeometryCache geo_;
};

}  // namespace hetero::fem
