#include "simmpi/comm.hpp"

#include <algorithm>
#include <array>

#include "netsim/collectives.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetero::simmpi {

namespace {

/// Registry handles hoisted out of the per-message paths (the registry
/// lookup takes a mutex; these references are stable for process lifetime).
struct CommMetrics {
  obs::Counter& messages = obs::metrics().counter("simmpi.messages");
  obs::Counter& p2p_bytes = obs::metrics().counter("simmpi.p2p_bytes");
  obs::Counter& collectives = obs::metrics().counter("simmpi.collectives");
  obs::Counter& collective_wait_s =
      obs::metrics().counter("simmpi.collective_wait_s");
};

CommMetrics& comm_metrics() {
  static CommMetrics metrics;
  return metrics;
}

/// Element-wise combine for reductions over a flat byte image of T.
template <class T>
std::vector<std::byte> combine_reduce(
    const std::vector<std::vector<std::byte>>& inputs, ReduceOp op) {
  const std::size_t bytes = inputs.front().size();
  for (const auto& in : inputs) {
    HETERO_REQUIRE(in.size() == bytes,
                   "allreduce: ranks passed differently sized inputs");
  }
  const std::size_t n = bytes / sizeof(T);
  std::vector<T> acc(n);
  std::memcpy(acc.data(), inputs.front().data(), bytes);
  for (std::size_t r = 1; r < inputs.size(); ++r) {
    std::vector<T> other(n);
    std::memcpy(other.data(), inputs[r].data(), bytes);
    for (std::size_t i = 0; i < n; ++i) {
      switch (op) {
        case ReduceOp::kSum: acc[i] += other[i]; break;
        case ReduceOp::kMin: acc[i] = std::min(acc[i], other[i]); break;
        case ReduceOp::kMax: acc[i] = std::max(acc[i], other[i]); break;
      }
    }
  }
  std::vector<std::byte> out(bytes);
  std::memcpy(out.data(), acc.data(), bytes);
  return out;
}

}  // namespace

Comm Comm::split(int color, int key) {
  // Share (color, key, world rank) across the current communicator.
  const std::vector<std::int64_t> mine{color, key, rank_};
  const auto all = allgatherv(std::span<const std::int64_t>(mine));
  HETERO_CHECK(all.size() == static_cast<std::size_t>(size()) * 3);
  std::vector<std::array<std::int64_t, 2>> picks;  // (key, world rank)
  for (std::size_t i = 0; i + 2 < all.size(); i += 3) {
    if (all[i] == color) {
      picks.push_back({all[i + 1], all[i + 2]});
    }
  }
  std::sort(picks.begin(), picks.end());
  std::vector<int> members;
  members.reserve(picks.size());
  int group_rank = -1;
  for (const auto& p : picks) {
    if (p[1] == rank_) {
      group_rank = static_cast<int>(members.size());
    }
    members.push_back(static_cast<int>(p[1]));
  }
  HETERO_CHECK(group_rank >= 0);

  Comm sub(*runtime_, rank_);
  sub.group_rank_ = group_rank;
  const int group_size = static_cast<int>(members.size());
  sub.group_ = runtime_->intern_group(std::move(members));
  sub.members_ = runtime_->group(sub.group_).members;
  // Approximate sub-communicator costs with a uniform topology of the same
  // fabrics (exact placement would need the member->node mapping, which the
  // uniform packing makes a fair approximation of).
  const netsim::Topology& world = runtime_->topology();
  sub.group_topo_ = std::make_shared<netsim::Topology>(
      netsim::Topology::uniform(group_size,
                                std::min(world.ranks_per_node(), group_size),
                                world.inter_node_fabric(),
                                world.intra_node_fabric(),
                                world.cross_group_penalty()));
  return sub;
}

void Comm::send_bytes(std::vector<std::byte> payload, int dest, int tag) {
  const int world_dest = world_of(dest);
  auto& stats = runtime_->stats_[static_cast<std::size_t>(rank_)];
  ++stats.messages_sent;
  stats.bytes_sent += payload.size();
  if (!stats.bytes_by_dest.empty()) {
    stats.bytes_by_dest[static_cast<std::size_t>(world_dest)] +=
        payload.size();
  }

  // Sender-side overhead: push the bytes into the NIC/shared segment. The
  // wire/latency part is charged to the receiver at matching time.
  const netsim::Topology& topo = runtime_->topology();
  const netsim::Fabric& fabric = topo.same_node(rank_, world_dest)
                                     ? topo.intra_node_fabric()
                                     : topo.inter_node_fabric();
  const double bytes = static_cast<double>(payload.size());
  const double before = now();
  const double overhead =
      (0.5 * fabric.params().latency_s +
       bytes / fabric.params().bandwidth_bps) *
      runtime_->degradation_.factor_at(before);
  clock().advance(overhead);
  stats.comm_seconds += overhead;

  if (auto* trace = obs::current_trace()) {
    trace->complete(rank_, "send", "simmpi", before, now(), "bytes", bytes);
  }
  auto& metrics = comm_metrics();
  metrics.messages.increment();
  metrics.p2p_bytes.add(bytes);

  runtime_->post_send(rank_, world_dest, tag, group_, std::move(payload),
                      now());
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag) {
  auto env = runtime_->blocking_recv(rank_, world_of(source), tag, group_);
  auto& stats = runtime_->stats_[static_cast<std::size_t>(rank_)];
  ++stats.messages_received;
  stats.bytes_received += env.payload.size();

  const double before = now();
  // Degradation is sampled at the departure instant so sender and receiver
  // agree on the window regardless of host-thread scheduling.
  const double transfer =
      runtime_->topology().message_time(env.source, rank_,
                                        env.payload.size()) *
      runtime_->degradation_.factor_at(env.depart_time);
  clock().advance_to(env.depart_time + transfer);
  stats.comm_seconds += now() - before;
  if (auto* trace = obs::current_trace()) {
    trace->complete(rank_, "recv", "simmpi", before, now(), "bytes",
                    static_cast<double>(env.payload.size()));
  }
  return std::move(env.payload);
}

void Comm::finish_collective(double exit_time, const char* name,
                             double bytes) {
  auto& stats = runtime_->stats_[static_cast<std::size_t>(rank_)];
  ++stats.collectives;
  const double before = now();
  clock().advance_to(exit_time);
  const double waited = now() - before;
  stats.comm_seconds += waited;
  if (auto* trace = obs::current_trace()) {
    trace->complete(rank_, name, "simmpi", before, now(), "bytes", bytes);
  }
  auto& metrics = comm_metrics();
  metrics.collectives.increment();
  metrics.collective_wait_s.add(waited);
}

void Comm::barrier() {
  const double cost = netsim::barrier_time(topology());
  double exit_time = 0.0;
  run_collective({}, nullptr, cost, &exit_time);
  finish_collective(exit_time, "barrier");
}

std::vector<std::byte> Comm::bcast_bytes(std::vector<std::byte> input,
                                         int root) {
  HETERO_REQUIRE(root >= 0 && root < size(), "bcast: root out of range");
  // Cost depends on the payload size, which only the root knows up front;
  // non-roots pass 0 and the runtime takes the max over ranks.
  const double cost =
      rank() == root ? netsim::bcast_time(topology(), input.size()) : 0.0;
  double exit_time = 0.0;
  auto result = run_collective(
      std::move(input),
      [root](const std::vector<std::vector<std::byte>>& inputs) {
        return inputs[static_cast<std::size_t>(root)];
      },
      cost, &exit_time);
  finish_collective(exit_time, "bcast", static_cast<double>(result.size()));
  return result;
}

std::vector<double> Comm::allreduce(std::span<const double> data,
                                    ReduceOp op) {
  const auto raw = reduce_like(std::as_bytes(data), op, /*is_double=*/true,
                               data.size_bytes());
  std::vector<double> out(raw.size() / sizeof(double));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

std::vector<std::int64_t> Comm::allreduce(std::span<const std::int64_t> data,
                                          ReduceOp op) {
  const auto raw = reduce_like(std::as_bytes(data), op, /*is_double=*/false,
                               data.size_bytes());
  std::vector<std::int64_t> out(raw.size() / sizeof(std::int64_t));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

double Comm::allreduce(double value, ReduceOp op) {
  return allreduce(std::span<const double>(&value, 1), op).front();
}

std::int64_t Comm::allreduce(std::int64_t value, ReduceOp op) {
  return allreduce(std::span<const std::int64_t>(&value, 1), op).front();
}

std::vector<std::byte> Comm::reduce_like(std::span<const std::byte> input,
                                         ReduceOp op, bool is_double,
                                         std::uint64_t cost_bytes) {
  const double cost = netsim::allreduce_time(topology(), cost_bytes);
  std::vector<std::byte> in(input.begin(), input.end());
  double exit_time = 0.0;
  auto result = run_collective(
      std::move(in),
      [op, is_double](const std::vector<std::vector<std::byte>>& inputs) {
        return is_double ? combine_reduce<double>(inputs, op)
                         : combine_reduce<std::int64_t>(inputs, op);
      },
      cost, &exit_time);
  finish_collective(exit_time, "allreduce",
                    static_cast<double>(cost_bytes));
  return result;
}

std::vector<std::byte> Comm::allgatherv_bytes(std::vector<std::byte> input,
                                              std::size_t element_size) {
  const double cost = netsim::allgather_time(
      topology(), std::max<std::uint64_t>(input.size(), element_size));
  double exit_time = 0.0;
  auto result = run_collective(
      std::move(input),
      [](const std::vector<std::vector<std::byte>>& inputs) {
        std::size_t total = 0;
        for (const auto& in : inputs) {
          total += in.size();
        }
        std::vector<std::byte> out;
        out.reserve(total);
        for (const auto& in : inputs) {
          out.insert(out.end(), in.begin(), in.end());
        }
        return out;
      },
      cost, &exit_time);
  finish_collective(exit_time, "allgatherv",
                    static_cast<double>(result.size()));
  return result;
}

std::vector<std::byte> Comm::gatherv_bytes(std::vector<std::byte> input,
                                           int root,
                                           std::size_t element_size) {
  HETERO_REQUIRE(root >= 0 && root < size(), "gatherv: root out of range");
  const double cost = netsim::gather_time(
      topology(), std::max<std::uint64_t>(input.size(), element_size));
  double exit_time = 0.0;
  auto result = run_collective_personalized(
      std::move(input),
      [root, p = size()](const std::vector<std::vector<std::byte>>& inputs) {
        std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
        std::size_t total = 0;
        for (const auto& in : inputs) {
          total += in.size();
        }
        auto& slot = out[static_cast<std::size_t>(root)];
        slot.reserve(total);
        for (const auto& in : inputs) {
          slot.insert(slot.end(), in.begin(), in.end());
        }
        return out;
      },
      cost, &exit_time);
  finish_collective(exit_time, "gatherv",
                    static_cast<double>(result.size()));
  return result;
}

std::vector<std::byte> Comm::scatterv_bytes(
    const std::vector<std::vector<std::byte>>& blocks, int root) {
  HETERO_REQUIRE(root >= 0 && root < size(), "scatterv: root out of range");
  // Flatten the root's blocks with framing; everyone else sends nothing.
  std::vector<std::byte> flat;
  std::uint64_t max_block = 1;
  if (rank_ == root) {
    for (const auto& b : blocks) {
      std::uint64_t len = b.size();
      const auto* lp = reinterpret_cast<const std::byte*>(&len);
      flat.insert(flat.end(), lp, lp + sizeof(len));
      flat.insert(flat.end(), b.begin(), b.end());
      max_block = std::max(max_block, len);
    }
  }
  // Scatter cost mirrors the gather pattern (root serializes the sends).
  const double cost =
      rank() == root ? netsim::gather_time(topology(), max_block) : 0.0;
  const int p = size();
  double exit_time = 0.0;
  auto mine = run_collective_personalized(
      std::move(flat),
      [root, p](const std::vector<std::vector<std::byte>>& inputs) {
        const auto& in = inputs[static_cast<std::size_t>(root)];
        std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
        std::size_t off = 0;
        for (int dest = 0; dest < p; ++dest) {
          std::uint64_t len = 0;
          HETERO_CHECK(off + sizeof(len) <= in.size());
          std::memcpy(&len, in.data() + off, sizeof(len));
          off += sizeof(len);
          HETERO_CHECK(off + len <= in.size());
          out[static_cast<std::size_t>(dest)].assign(in.data() + off,
                                                     in.data() + off + len);
          off += len;
        }
        return out;
      },
      cost, &exit_time);
  finish_collective(exit_time, "scatterv",
                    static_cast<double>(mine.size()));
  return mine;
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    const std::vector<std::vector<std::byte>>& blocks) {
  // Serialize: [u64 count per destination] then concatenated payloads. The
  // combine reshuffles so each rank extracts the blocks addressed to it.
  const int p = size();
  std::vector<std::byte> flat;
  std::uint64_t header[1];
  std::uint64_t avg_bytes = 0;
  for (const auto& b : blocks) {
    avg_bytes += b.size();
  }
  avg_bytes = std::max<std::uint64_t>(
      1, avg_bytes / static_cast<std::uint64_t>(p));
  for (const auto& b : blocks) {
    header[0] = b.size();
    const auto* hp = reinterpret_cast<const std::byte*>(header);
    flat.insert(flat.end(), hp, hp + sizeof(header));
    flat.insert(flat.end(), b.begin(), b.end());
  }
  const double cost = netsim::alltoall_time(topology(), avg_bytes);
  double exit_time = 0.0;
  auto mine = run_collective_personalized(
      std::move(flat),
      [p](const std::vector<std::vector<std::byte>>& inputs) {
        // For every destination, extract from every source the block
        // addressed to it, concatenated with the same framing.
        std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
        for (int src = 0; src < p; ++src) {
          const auto& in = inputs[static_cast<std::size_t>(src)];
          std::size_t off = 0;
          for (int dest = 0; dest < p; ++dest) {
            std::uint64_t len = 0;
            HETERO_CHECK(off + sizeof(len) <= in.size());
            std::memcpy(&len, in.data() + off, sizeof(len));
            off += sizeof(len);
            HETERO_CHECK(off + len <= in.size());
            auto& slot = out[static_cast<std::size_t>(dest)];
            const auto* fp = reinterpret_cast<const std::byte*>(&len);
            slot.insert(slot.end(), fp, fp + sizeof(len));
            slot.insert(slot.end(), in.data() + off, in.data() + off + len);
            off += len;
          }
        }
        return out;
      },
      cost, &exit_time);
  finish_collective(exit_time, "alltoallv",
                    static_cast<double>(mine.size()));

  // Deframe into per-source blocks.
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  std::size_t off = 0;
  for (int src = 0; src < p; ++src) {
    std::uint64_t len = 0;
    HETERO_CHECK(off + sizeof(len) <= mine.size());
    std::memcpy(&len, mine.data() + off, sizeof(len));
    off += sizeof(len);
    out[static_cast<std::size_t>(src)].assign(mine.data() + off,
                                              mine.data() + off + len);
    off += len;
  }
  return out;
}

}  // namespace hetero::simmpi
