#pragma once

/// \file simclock.hpp
/// Per-rank virtual clock.
///
/// Every simulated rank owns a SimClock measuring *platform* seconds — the
/// time the computation would have taken on the target machine, not host
/// wall time. Compute phases advance it by modeled amounts; the message-
/// passing runtime advances it by netsim-modeled transfer costs and merges
/// clocks at synchronizing collectives.

#include "support/error.hpp"

namespace hetero::simmpi {

class SimClock {
 public:
  /// Current virtual time in seconds since rank start.
  double time() const { return time_s_; }

  /// Advances by a non-negative duration (compute or send overhead).
  void advance(double seconds) {
    HETERO_REQUIRE(seconds >= 0.0, "SimClock cannot run backwards");
    time_s_ += seconds;
  }

  /// Moves the clock forward to `t` if it is ahead of the current time
  /// (message arrival, collective exit). Never moves backwards.
  void advance_to(double t) {
    if (t > time_s_) {
      time_s_ = t;
    }
  }

  void reset() { time_s_ = 0.0; }

 private:
  double time_s_ = 0.0;
};

}  // namespace hetero::simmpi
