#pragma once

/// \file runtime.hpp
/// The simulated message-passing runtime.
///
/// `Runtime` executes N ranks as host threads inside one process. Messages
/// are moved through in-memory mailboxes (so the numerics are exactly what a
/// real MPI job would compute) while a netsim `Topology` prices every
/// transfer and collective into per-rank virtual clocks. This replaces the
/// paper's physical clusters: the applications run the real message-passing
/// code path; only *time* is modeled.
///
/// Semantics implemented (deliberately the subset the applications and
/// substrates use, with MPI-compatible behaviour):
///   * `send` is buffered and never blocks (eager-protocol semantics);
///   * `recv(src, tag)` blocks until a matching message arrives; matching is
///     by exact (source, tag), preserving MPI's non-overtaking order per
///     (source, tag) pair;
///   * collectives are synchronizing: all clocks merge to
///     max(entry clocks) + modeled collective cost.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "netsim/degradation.hpp"
#include "netsim/topology.hpp"
#include "simmpi/simclock.hpp"

namespace hetero::simmpi {

class Comm;

/// Per-rank traffic counters (virtual-time accounting).
struct CommStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t collectives = 0;
  /// Virtual seconds this rank spent inside communication calls.
  double comm_seconds = 0.0;
  /// Point-to-point payload bytes sent to each destination rank — the
  /// row of the job's traffic matrix owned by this rank. Collectives are
  /// not included (they move through the rendezvous, not the mailboxes).
  std::vector<std::uint64_t> bytes_by_dest;
};

/// Thrown inside rank bodies when another rank failed and the job is being
/// torn down; rank code should let it propagate.
class Aborted : public Error {
 public:
  Aborted() : Error("simmpi: job aborted by another rank") {}
};

class Runtime {
 public:
  /// Creates a runtime for `topology.ranks()` ranks.
  explicit Runtime(netsim::Topology topology);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int size() const { return topology_.ranks(); }
  const netsim::Topology& topology() const { return topology_; }

  /// Runs `rank_main` once per rank, each on its own thread, and joins.
  /// If any rank throws, all others are aborted and the first exception is
  /// rethrown here.
  void run(const std::function<void(Comm&)>& rank_main);

  /// Virtual completion time of the job: max over rank clocks after run().
  double elapsed_sim_seconds() const;

  /// Per-rank statistics collected during the last run().
  const CommStats& stats(int rank) const;

  /// Host-time guard against deadlocked receives: a recv that matches
  /// nothing for this long aborts the job with a diagnostic instead of
  /// hanging the process. Default 120 s; 0 disables the guard.
  void set_recv_timeout(double host_seconds) {
    recv_timeout_s_ = host_seconds;
  }
  double recv_timeout() const { return recv_timeout_s_; }

  /// Installs network-degradation windows: every modeled communication cost
  /// is scaled by `schedule.factor_at(virtual time)`. Set before run();
  /// the default schedule is inert.
  void set_degradation(const netsim::DegradationSchedule& schedule) {
    degradation_ = schedule;
  }
  const netsim::DegradationSchedule& degradation() const {
    return degradation_;
  }

  /// Per-rank compute-cost multiplier: `Comm::compute(s)` charges
  /// `s * fn(world_rank, virtual time)` instead of `s`. The per-rank speed
  /// skew (resil::SkewPlan) hooks in here. Set before run(); must be a pure
  /// function of its arguments (it is called concurrently from every rank
  /// thread). Unset (the default) charges `s` unchanged, so skew-free runs
  /// are bit-identical to builds without the hook.
  using ComputeScaleFn = std::function<double(int rank, double now)>;
  void set_compute_scale(ComputeScaleFn fn) {
    compute_scale_ = std::move(fn);
  }
  const ComputeScaleFn& compute_scale() const { return compute_scale_; }

 private:
  friend class Comm;

  struct Envelope {
    int source = 0;  // world rank
    int tag = 0;
    /// Communicator the message was sent on (0 = world); matching requires
    /// the same group, so sub-communicators isolate their tag spaces as in
    /// MPI.
    std::uint64_t group = 0;
    std::vector<std::byte> payload;
    /// Sender virtual time at which the message left.
    double depart_time = 0.0;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Envelope> queue;
  };

  // --- point-to-point (called by Comm) ---
  void post_send(int source, int dest, int tag, std::uint64_t group,
                 std::vector<std::byte> payload, double depart_time);
  Envelope blocking_recv(int self, int source, int tag, std::uint64_t group);

  // --- sub-communicator support ---
  /// State of one process group (world communicator = group id 0, created
  /// implicitly). Guarded by coll_mutex_ like the world collective state.
  struct GroupState {
    std::vector<int> members;  // world ranks, ordered by (key, world rank)
    std::uint64_t generation = 0;
    int arrived = 0;
    std::vector<std::vector<std::byte>> inputs;
    std::vector<std::byte> result;
    std::vector<std::vector<std::byte>> results_per_rank;
    bool personalized = false;
    double max_entry = 0.0;
    double cost = 0.0;
    double exit = 0.0;
  };

  /// Registers (or finds) the group with these members; returns its id.
  std::uint64_t intern_group(std::vector<int> members);
  const GroupState& group(std::uint64_t id);

  // --- generic synchronizing collective ---
  /// Every rank contributes `input` and a cost (all ranks must pass the same
  /// cost). Rank 0's `combine` runs once over all inputs (indexed by rank);
  /// its result is returned to every rank. Returns {result, exit_time}.
  using CombineFn = std::function<std::vector<std::byte>(
      const std::vector<std::vector<std::byte>>&)>;
  std::vector<std::byte> collective(int rank, std::vector<std::byte> input,
                                    const CombineFn& combine,
                                    double cost_seconds, double entry_time,
                                    double* exit_time);

  /// Personalized variant: `combine` (run once, by the last arrival) returns
  /// one result *per rank*; each rank receives its own slot. Used by
  /// alltoallv, where every rank gets different data.
  using CombinePerRankFn = std::function<std::vector<std::vector<std::byte>>(
      const std::vector<std::vector<std::byte>>&)>;
  std::vector<std::byte> collective_personalized(
      int rank, std::vector<std::byte> input, const CombinePerRankFn& combine,
      double cost_seconds, double entry_time, double* exit_time);

  /// Group-scoped synchronizing collectives (same semantics as the world
  /// variants, but over the group's members; `member_index` is the caller's
  /// position in the group).
  std::vector<std::byte> group_collective(std::uint64_t group_id,
                                          int member_index,
                                          std::vector<std::byte> input,
                                          const CombineFn& combine,
                                          double cost_seconds,
                                          double entry_time,
                                          double* exit_time);
  std::vector<std::byte> group_collective_personalized(
      std::uint64_t group_id, int member_index, std::vector<std::byte> input,
      const CombinePerRankFn& combine, double cost_seconds, double entry_time,
      double* exit_time);

  void abort_all();
  void check_abort() const;

  netsim::Topology topology_;
  std::vector<Mailbox> mailboxes_;
  std::vector<SimClock> clocks_;
  std::vector<CommStats> stats_;

  std::unordered_map<std::uint64_t, GroupState> groups_;

  // Collective rendezvous state (generation-counted so it is reusable).
  std::mutex coll_mutex_;
  std::condition_variable coll_cv_;
  std::uint64_t coll_generation_ = 0;
  int coll_arrived_ = 0;
  std::vector<std::vector<std::byte>> coll_inputs_;
  std::vector<std::byte> coll_result_;
  std::vector<std::vector<std::byte>> coll_results_per_rank_;
  bool coll_personalized_ = false;
  double coll_max_entry_ = 0.0;
  double coll_cost_ = 0.0;
  double coll_exit_ = 0.0;

  std::atomic<bool> aborted_{false};
  double recv_timeout_s_ = 120.0;
  netsim::DegradationSchedule degradation_;
  ComputeScaleFn compute_scale_;
};

}  // namespace hetero::simmpi
