#pragma once

/// \file comm.hpp
/// Rank-local communicator handle: the API application code programs
/// against. Mirrors the MPI subset the paper's applications need — buffered
/// point-to-point send/recv plus the synchronizing collectives — with typed
/// convenience wrappers for trivially copyable element types.

#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "simmpi/runtime.hpp"

namespace hetero::simmpi {

/// Reduction operators supported by reduce/allreduce.
enum class ReduceOp { kSum, kMin, kMax };

class Comm;

/// Handle for a pending nonblocking receive. Sends complete immediately
/// (buffered semantics), so only receives need requests. Movable-only.
template <class T>
class RecvRequest {
 public:
  RecvRequest() = default;
  RecvRequest(Comm* comm, int source, int tag)
      : comm_(comm), source_(source), tag_(tag) {}

  RecvRequest(RecvRequest&& other) noexcept { *this = std::move(other); }
  RecvRequest& operator=(RecvRequest&& other) noexcept {
    comm_ = other.comm_;
    source_ = other.source_;
    tag_ = other.tag_;
    other.comm_ = nullptr;
    return *this;
  }
  RecvRequest(const RecvRequest&) = delete;
  RecvRequest& operator=(const RecvRequest&) = delete;

  bool valid() const { return comm_ != nullptr; }

  /// Blocks until the message arrives; consumes the request.
  std::vector<T> wait();

 private:
  Comm* comm_ = nullptr;
  int source_ = 0;
  int tag_ = 0;
};

class Comm {
 public:
  Comm(Runtime& runtime, int rank) : runtime_(&runtime), rank_(rank) {}

  /// Rank within this communicator (group-relative for split comms).
  int rank() const { return group_ == 0 ? rank_ : group_rank_; }
  int size() const {
    return group_ == 0 ? runtime_->size() : static_cast<int>(members_.size());
  }
  /// World rank of this process (identical to rank() on the world comm).
  int world_rank() const { return rank_; }
  bool is_world() const { return group_ == 0; }

  const netsim::Topology& topology() const {
    return group_ == 0 ? runtime_->topology() : *group_topo_;
  }

  /// MPI_Comm_split: collective over this communicator. Processes with the
  /// same `color` form a new communicator ordered by (key, world rank).
  /// Sub-communicators have isolated tag spaces and their own collectives;
  /// their ranks are group-relative.
  Comm split(int color, int key);

  /// Virtual clock of this rank; applications advance it for compute work.
  SimClock& clock() {
    return runtime_->clocks_[static_cast<std::size_t>(rank_)];
  }
  double now() const {
    return runtime_->clocks_[static_cast<std::size_t>(rank_)].time();
  }

  /// Records `seconds` of modeled local computation. When the runtime has
  /// a compute-scale hook (per-rank speed skew), the charge is multiplied
  /// by this rank's factor at the current virtual time — slow cores and
  /// noisy-neighbor windows stretch exactly the compute, never the
  /// numerics or the communication model.
  void compute(double seconds) {
    if (runtime_->compute_scale_) {
      seconds *= runtime_->compute_scale_(rank_, now());
    }
    clock().advance(seconds);
  }

  const CommStats& stats() const {
    return runtime_->stats_[static_cast<std::size_t>(rank_)];
  }

  // ---- point-to-point -----------------------------------------------------

  /// Buffered send; returns once the payload is handed to the runtime. The
  /// sender clock advances by the modeled injection overhead.
  template <class T>
  void send(std::span<const T> data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(as_bytes_copy(data), dest, tag);
  }
  template <class T>
  void send(const std::vector<T>& data, int dest, int tag) {
    send(std::span<const T>(data), dest, tag);
  }

  /// Blocking receive of a message from (source, tag); returns the payload
  /// reinterpreted as T. The receiver clock advances to the modeled arrival.
  template <class T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> raw = recv_bytes(source, tag);
    HETERO_REQUIRE(raw.size() % sizeof(T) == 0,
                   "recv: payload size is not a multiple of element size");
    std::vector<T> out(raw.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), raw.data(), raw.size());
    }
    return out;
  }

  /// Blocking receive into caller-provided storage: avoids the per-message
  /// typed-vector allocation of recv() for hot exchange loops that keep a
  /// persistent buffer. Returns the element count received; `out` must be
  /// at least that large.
  template <class T>
  std::size_t recv_into(std::span<T> out, int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> raw = recv_bytes(source, tag);
    HETERO_REQUIRE(raw.size() % sizeof(T) == 0,
                   "recv_into: payload size is not a multiple of element "
                   "size");
    const std::size_t n = raw.size() / sizeof(T);
    HETERO_REQUIRE(n <= out.size(), "recv_into: buffer too small");
    if (n != 0) {
      std::memcpy(out.data(), raw.data(), raw.size());
    }
    return n;
  }

  /// Nonblocking receive: returns a request to wait on later. Matching
  /// follows the same (source, tag) non-overtaking order as recv().
  template <class T>
  RecvRequest<T> irecv(int source, int tag) {
    return RecvRequest<T>(this, source, tag);
  }

  /// Combined send+receive against (possibly different) peers; safe under
  /// the buffered-send semantics and convenient for halo-style exchanges.
  template <class T>
  std::vector<T> sendrecv(std::span<const T> send_data, int dest,
                          int send_tag, int source, int recv_tag) {
    send(send_data, dest, send_tag);
    return recv<T>(source, recv_tag);
  }

  // ---- collectives (synchronizing) ----------------------------------------

  void barrier();

  /// Broadcast `data` from `root`; on non-root ranks the argument's contents
  /// are replaced.
  template <class T>
  void bcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> in;
    if (rank_ == root) {
      in = as_bytes_copy(std::span<const T>(data));
    }
    const auto out = bcast_bytes(std::move(in), root);
    data.assign(out.size() / sizeof(T), T{});
    if (!data.empty()) {
      std::memcpy(data.data(), out.data(), out.size());
    }
  }

  /// Element-wise allreduce; every rank passes equally sized input.
  std::vector<double> allreduce(std::span<const double> data, ReduceOp op);
  std::vector<std::int64_t> allreduce(std::span<const std::int64_t> data,
                                      ReduceOp op);
  double allreduce(double value, ReduceOp op);
  std::int64_t allreduce(std::int64_t value, ReduceOp op);

  /// Gather equally typed (possibly differently sized) blocks; every rank
  /// receives the concatenation ordered by rank.
  template <class T>
  std::vector<T> allgatherv(std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto out = allgatherv_bytes(as_bytes_copy(data), sizeof(T));
    std::vector<T> result(out.size() / sizeof(T));
    if (!result.empty()) {
      std::memcpy(result.data(), out.data(), out.size());
    }
    return result;
  }
  template <class T>
  std::vector<T> allgatherv(const std::vector<T>& data) {
    return allgatherv(std::span<const T>(data));
  }

  /// Gather of variable-size blocks to `root`: the root receives the
  /// concatenation ordered by rank; other ranks receive an empty vector.
  template <class T>
  std::vector<T> gatherv(std::span<const T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto out = gatherv_bytes(as_bytes_copy(data), root, sizeof(T));
    std::vector<T> result(out.size() / sizeof(T));
    if (!result.empty()) {
      std::memcpy(result.data(), out.data(), out.size());
    }
    return result;
  }
  template <class T>
  std::vector<T> gatherv(const std::vector<T>& data, int root) {
    return gatherv(std::span<const T>(data), root);
  }

  /// Scatter of per-rank blocks from `root`: rank r receives blocks[r].
  /// Only the root's `blocks` argument is read. Cost is modeled as the
  /// matching gather pattern in reverse.
  template <class T>
  std::vector<T> scatterv(const std::vector<std::vector<T>>& blocks,
                          int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::vector<std::byte>> raw(
        static_cast<std::size_t>(size()));
    if (rank_ == root) {
      HETERO_REQUIRE(static_cast<int>(blocks.size()) == size(),
                     "scatterv: root needs one block per rank");
      for (std::size_t d = 0; d < blocks.size(); ++d) {
        raw[d] = as_bytes_copy(std::span<const T>(blocks[d]));
      }
    }
    const auto out = scatterv_bytes(raw, root);
    std::vector<T> result(out.size() / sizeof(T));
    if (!result.empty()) {
      std::memcpy(result.data(), out.data(), out.size());
    }
    return result;
  }

  /// Personalized all-to-all: `blocks[d]` goes to rank d; returns the blocks
  /// received, indexed by source rank.
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& blocks) {
    static_assert(std::is_trivially_copyable_v<T>);
    HETERO_REQUIRE(static_cast<int>(blocks.size()) == size(),
                   "alltoallv: need one block per destination rank");
    std::vector<std::vector<std::byte>> raw(blocks.size());
    for (std::size_t d = 0; d < blocks.size(); ++d) {
      raw[d] = as_bytes_copy(std::span<const T>(blocks[d]));
    }
    const auto got = alltoallv_bytes(raw);
    std::vector<std::vector<T>> out(got.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      out[s].resize(got[s].size() / sizeof(T));
      if (!out[s].empty()) {
        std::memcpy(out[s].data(), got[s].data(), got[s].size());
      }
    }
    return out;
  }

  // ---- byte-level primitives (exposed for tests) ---------------------------

  void send_bytes(std::vector<std::byte> payload, int dest, int tag);
  std::vector<std::byte> recv_bytes(int source, int tag);
  std::vector<std::byte> bcast_bytes(std::vector<std::byte> input, int root);
  std::vector<std::byte> allgatherv_bytes(std::vector<std::byte> input,
                                          std::size_t element_size);
  std::vector<std::byte> gatherv_bytes(std::vector<std::byte> input, int root,
                                       std::size_t element_size);
  std::vector<std::byte> scatterv_bytes(
      const std::vector<std::vector<std::byte>>& blocks, int root);
  std::vector<std::vector<std::byte>> alltoallv_bytes(
      const std::vector<std::vector<std::byte>>& blocks);

 private:
  template <class T>
  static std::vector<std::byte> as_bytes_copy(std::span<const T> data) {
    std::vector<std::byte> out(data.size_bytes());
    if (!out.empty()) {
      std::memcpy(out.data(), data.data(), data.size_bytes());
    }
    return out;
  }

  std::vector<std::byte> reduce_like(std::span<const std::byte> input,
                                     ReduceOp op, bool is_double,
                                     std::uint64_t cost_bytes);

  /// Advances the clock to the collective exit time, updates stats, and
  /// emits a `name` trace span covering this rank's wait (if tracing).
  void finish_collective(double exit_time, const char* name,
                         double bytes = 0.0);

  /// World rank of communicator-relative rank `r`.
  int world_of(int r) const {
    HETERO_REQUIRE(r >= 0 && r < size(), "rank out of communicator range");
    return group_ == 0 ? r : members_[static_cast<std::size_t>(r)];
  }

  /// Group-aware shared collective.
  std::vector<std::byte> run_collective(std::vector<std::byte> input,
                                        const Runtime::CombineFn& combine,
                                        double cost, double* exit_time) {
    if (group_ == 0) {
      return runtime_->collective(rank_, std::move(input), combine, cost,
                                  now(), exit_time);
    }
    return runtime_->group_collective(group_, group_rank_, std::move(input),
                                      combine, cost, now(), exit_time);
  }
  std::vector<std::byte> run_collective_personalized(
      std::vector<std::byte> input, const Runtime::CombinePerRankFn& combine,
      double cost, double* exit_time) {
    if (group_ == 0) {
      return runtime_->collective_personalized(rank_, std::move(input),
                                               combine, cost, now(),
                                               exit_time);
    }
    return runtime_->group_collective_personalized(
        group_, group_rank_, std::move(input), combine, cost, now(),
        exit_time);
  }

  Runtime* runtime_;
  int rank_;  // world rank
  // Sub-communicator state (empty/defaulted on the world communicator).
  std::uint64_t group_ = 0;
  int group_rank_ = 0;
  std::vector<int> members_;
  std::shared_ptr<netsim::Topology> group_topo_;
};

template <class T>
std::vector<T> RecvRequest<T>::wait() {
  HETERO_REQUIRE(comm_ != nullptr, "wait() on an empty or consumed request");
  Comm* comm = comm_;
  comm_ = nullptr;
  return comm->recv<T>(source_, tag_);
}

}  // namespace hetero::simmpi
