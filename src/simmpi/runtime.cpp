#include "simmpi/runtime.hpp"

#include <exception>
#include <thread>

#include "obs/trace.hpp"
#include "simmpi/comm.hpp"

namespace hetero::simmpi {

Runtime::Runtime(netsim::Topology topology)
    : topology_(std::move(topology)),
      mailboxes_(static_cast<std::size_t>(topology_.ranks())),
      clocks_(static_cast<std::size_t>(topology_.ranks())),
      stats_(static_cast<std::size_t>(topology_.ranks())),
      coll_inputs_(static_cast<std::size_t>(topology_.ranks())) {}

Runtime::~Runtime() = default;

void Runtime::run(const std::function<void(Comm&)>& rank_main) {
  const int p = size();
  for (int r = 0; r < p; ++r) {
    clocks_[static_cast<std::size_t>(r)].reset();
    stats_[static_cast<std::size_t>(r)] = CommStats{};
    stats_[static_cast<std::size_t>(r)].bytes_by_dest.assign(
        static_cast<std::size_t>(p), 0);
    mailboxes_[static_cast<std::size_t>(r)].queue.clear();
  }
  aborted_.store(false);
  coll_arrived_ = 0;
  coll_generation_ = 0;
  groups_.clear();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      // Each rank thread records trace events on its own row.
      obs::bind_trace_rank(r);
      Comm comm(*this, r);
      try {
        rank_main(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        abort_all();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

double Runtime::elapsed_sim_seconds() const {
  double t = 0.0;
  for (const auto& clock : clocks_) {
    t = std::max(t, clock.time());
  }
  return t;
}

const CommStats& Runtime::stats(int rank) const {
  HETERO_REQUIRE(rank >= 0 && rank < size(), "stats(): rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

void Runtime::post_send(int source, int dest, int tag, std::uint64_t group,
                        std::vector<std::byte> payload, double depart_time) {
  HETERO_REQUIRE(dest >= 0 && dest < size(), "send: destination out of range");
  auto& box = mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(
        Envelope{source, tag, group, std::move(payload), depart_time});
  }
  box.cv.notify_all();
}

Runtime::Envelope Runtime::blocking_recv(int self, int source, int tag,
                                         std::uint64_t group) {
  HETERO_REQUIRE(source >= 0 && source < size(), "recv: source out of range");
  auto& box = mailboxes_[static_cast<std::size_t>(self)];
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    check_abort();
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->source == source && it->tag == tag && it->group == group) {
        Envelope env = std::move(*it);
        box.queue.erase(it);
        return env;
      }
    }
    if (recv_timeout_s_ > 0.0) {
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (waited > recv_timeout_s_) {
        // A matching message never arrived: almost certainly a deadlocked
        // or mismatched communication pattern. Fail loudly instead of
        // hanging the host process.
        abort_all();
        throw Error("simmpi: rank " + std::to_string(self) +
                    " waited " + std::to_string(waited) +
                    " s for a message from rank " + std::to_string(source) +
                    " (tag " + std::to_string(tag) +
                    ") — deadlock or mismatched send/recv pattern");
      }
    }
    box.cv.wait_for(lock, std::chrono::milliseconds(50));
  }
}

std::uint64_t Runtime::intern_group(std::vector<int> members) {
  HETERO_REQUIRE(!members.empty(), "a group needs at least one member");
  // FNV over the member list; nudge on (astronomically unlikely) collision.
  std::uint64_t id = 1469598103934665603ULL;
  for (int m : members) {
    id ^= static_cast<std::uint64_t>(m) + 0x9e3779b9ULL;
    id *= 1099511628211ULL;
  }
  if (id == 0) {
    id = 1;  // 0 is the world communicator
  }
  std::lock_guard<std::mutex> lock(coll_mutex_);
  for (;;) {
    auto it = groups_.find(id);
    if (it == groups_.end()) {
      GroupState state;
      state.members = std::move(members);
      state.inputs.resize(state.members.size());
      groups_.emplace(id, std::move(state));
      return id;
    }
    if (it->second.members == members) {
      return id;  // same membership: safe to share (generation-counted)
    }
    ++id;
  }
}

const Runtime::GroupState& Runtime::group(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(coll_mutex_);
  const auto it = groups_.find(id);
  HETERO_REQUIRE(it != groups_.end(), "unknown communicator group");
  return it->second;
}

std::vector<std::byte> Runtime::group_collective(
    std::uint64_t group_id, int member_index, std::vector<std::byte> input,
    const CombineFn& combine, double cost_seconds, double entry_time,
    double* exit_time) {
  std::unique_lock<std::mutex> lock(coll_mutex_);
  check_abort();
  auto it = groups_.find(group_id);
  HETERO_REQUIRE(it != groups_.end(), "unknown communicator group");
  GroupState& g = it->second;
  const std::uint64_t my_generation = g.generation;
  g.inputs[static_cast<std::size_t>(member_index)] = std::move(input);
  g.max_entry = (g.arrived == 0) ? entry_time
                                 : std::max(g.max_entry, entry_time);
  g.cost = (g.arrived == 0) ? cost_seconds : std::max(g.cost, cost_seconds);
  ++g.arrived;
  if (g.arrived == static_cast<int>(g.members.size())) {
    g.personalized = false;
    g.result = combine ? combine(g.inputs) : std::vector<std::byte>{};
    g.exit = g.max_entry + g.cost * degradation_.factor_at(g.max_entry);
    g.arrived = 0;
    ++g.generation;
    for (auto& in : g.inputs) {
      in.clear();
    }
    coll_cv_.notify_all();
  } else {
    coll_cv_.wait(lock, [&] {
      return g.generation != my_generation || aborted_.load();
    });
    check_abort();
  }
  *exit_time = g.exit;
  return g.result;
}

std::vector<std::byte> Runtime::group_collective_personalized(
    std::uint64_t group_id, int member_index, std::vector<std::byte> input,
    const CombinePerRankFn& combine, double cost_seconds, double entry_time,
    double* exit_time) {
  std::unique_lock<std::mutex> lock(coll_mutex_);
  check_abort();
  auto it = groups_.find(group_id);
  HETERO_REQUIRE(it != groups_.end(), "unknown communicator group");
  GroupState& g = it->second;
  const std::uint64_t my_generation = g.generation;
  g.inputs[static_cast<std::size_t>(member_index)] = std::move(input);
  g.max_entry = (g.arrived == 0) ? entry_time
                                 : std::max(g.max_entry, entry_time);
  g.cost = (g.arrived == 0) ? cost_seconds : std::max(g.cost, cost_seconds);
  ++g.arrived;
  if (g.arrived == static_cast<int>(g.members.size())) {
    g.personalized = true;
    g.results_per_rank = combine(g.inputs);
    HETERO_CHECK(g.results_per_rank.size() == g.members.size());
    g.exit = g.max_entry + g.cost * degradation_.factor_at(g.max_entry);
    g.arrived = 0;
    ++g.generation;
    for (auto& in : g.inputs) {
      in.clear();
    }
    coll_cv_.notify_all();
  } else {
    coll_cv_.wait(lock, [&] {
      return g.generation != my_generation || aborted_.load();
    });
    check_abort();
  }
  HETERO_CHECK(g.personalized);
  *exit_time = g.exit;
  return g.results_per_rank[static_cast<std::size_t>(member_index)];
}

namespace {
/// Runs the shared rendezvous: returns true on the rank that arrived last
/// (which must fill the result slots before others read them).
}  // namespace

std::vector<std::byte> Runtime::collective(int rank,
                                           std::vector<std::byte> input,
                                           const CombineFn& combine,
                                           double cost_seconds,
                                           double entry_time,
                                           double* exit_time) {
  std::unique_lock<std::mutex> lock(coll_mutex_);
  check_abort();
  const std::uint64_t my_generation = coll_generation_;
  coll_inputs_[static_cast<std::size_t>(rank)] = std::move(input);
  coll_max_entry_ = (coll_arrived_ == 0)
                        ? entry_time
                        : std::max(coll_max_entry_, entry_time);
  coll_cost_ = (coll_arrived_ == 0) ? cost_seconds
                                    : std::max(coll_cost_, cost_seconds);
  ++coll_arrived_;
  if (coll_arrived_ == size()) {
    // Last arrival performs the combine and releases everyone.
    coll_personalized_ = false;
    coll_result_ = combine ? combine(coll_inputs_) : std::vector<std::byte>{};
    coll_exit_ =
        coll_max_entry_ + coll_cost_ * degradation_.factor_at(coll_max_entry_);
    coll_arrived_ = 0;
    ++coll_generation_;
    for (auto& in : coll_inputs_) {
      in.clear();
    }
    coll_cv_.notify_all();
  } else {
    coll_cv_.wait(lock, [&] {
      return coll_generation_ != my_generation || aborted_.load();
    });
    check_abort();
  }
  *exit_time = coll_exit_;
  return coll_result_;
}

std::vector<std::byte> Runtime::collective_personalized(
    int rank, std::vector<std::byte> input, const CombinePerRankFn& combine,
    double cost_seconds, double entry_time, double* exit_time) {
  std::unique_lock<std::mutex> lock(coll_mutex_);
  check_abort();
  const std::uint64_t my_generation = coll_generation_;
  coll_inputs_[static_cast<std::size_t>(rank)] = std::move(input);
  coll_max_entry_ = (coll_arrived_ == 0)
                        ? entry_time
                        : std::max(coll_max_entry_, entry_time);
  coll_cost_ = (coll_arrived_ == 0) ? cost_seconds
                                    : std::max(coll_cost_, cost_seconds);
  ++coll_arrived_;
  if (coll_arrived_ == size()) {
    coll_personalized_ = true;
    coll_results_per_rank_ = combine(coll_inputs_);
    HETERO_CHECK(static_cast<int>(coll_results_per_rank_.size()) == size());
    coll_exit_ =
        coll_max_entry_ + coll_cost_ * degradation_.factor_at(coll_max_entry_);
    coll_arrived_ = 0;
    ++coll_generation_;
    for (auto& in : coll_inputs_) {
      in.clear();
    }
    coll_cv_.notify_all();
  } else {
    coll_cv_.wait(lock, [&] {
      return coll_generation_ != my_generation || aborted_.load();
    });
    check_abort();
  }
  HETERO_CHECK(coll_personalized_);
  *exit_time = coll_exit_;
  return coll_results_per_rank_[static_cast<std::size_t>(rank)];
}

void Runtime::abort_all() {
  aborted_.store(true);
  for (auto& box : mailboxes_) {
    box.cv.notify_all();
  }
  coll_cv_.notify_all();
}

void Runtime::check_abort() const {
  if (aborted_.load()) {
    throw Aborted();
  }
}

}  // namespace hetero::simmpi
