#include "lb/load_balancer.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace hetero::lb {

LoadBalancer::LoadBalancer(const BalancePolicy& policy, int ranks)
    : policy_(policy), ranks_(ranks) {
  HETERO_REQUIRE(ranks >= 1, "load balancer needs ranks >= 1");
  HETERO_REQUIRE(policy.threshold > 1.0,
                 "balance threshold must be > 1 (1.0 would re-trigger on "
                 "the rounding noise of a perfect partition)");
  HETERO_REQUIRE(policy.check_every >= 1,
                 "balance check_every must be >= 1");
  HETERO_REQUIRE(policy.min_steps >= 1, "balance min_steps must be >= 1");
  HETERO_REQUIRE(policy.max_rebalances >= 0,
                 "balance max_rebalances must be >= 0");
  HETERO_REQUIRE(policy.valid_mode(),
                 "balance mode must be 'repartition' or 'diffuse'");
  HETERO_REQUIRE(
      policy.min_weight > 0.0 && policy.max_weight >= policy.min_weight,
      "balance weight clamp needs 0 < min_weight <= max_weight");
  HETERO_REQUIRE(policy.diffusion_eta > 0.0 && policy.diffusion_eta <= 1.0,
                 "balance diffusion_eta must be in (0, 1]");
  // EWMAs primed with no model: the first observation seeds them.
  ewma_.assign(static_cast<std::size_t>(ranks),
               obs::DriftEstimator(0.0, 0.5));
  weights_.assign(static_cast<std::size_t>(ranks), 1.0);
}

bool LoadBalancer::observe(int step, std::span<const double> rank_step_s) {
  HETERO_REQUIRE(rank_step_s.size() == static_cast<std::size_t>(ranks_),
                 "load balancer: need one step time per rank");
  for (int r = 0; r < ranks_; ++r) {
    ewma_[static_cast<std::size_t>(r)].observe(
        rank_step_s[static_cast<std::size_t>(r)]);
  }
  if (!enabled()) {
    return false;
  }
  if ((step + 1) % policy_.check_every != 0) {
    return false;
  }
  if (ewma_.front().samples() < policy_.min_steps) {
    return false;
  }
  const double imb = imbalance();
  ++outcome_.checks;
  outcome_.last_imbalance = imb;
  if (outcome_.rebalances >= policy_.max_rebalances) {
    return false;
  }
  return imb > policy_.threshold;
}

double LoadBalancer::imbalance() const {
  if (ranks_ == 0 || ewma_.front().samples() == 0) {
    return 1.0;
  }
  double sum = 0.0;
  double worst = 0.0;
  for (const auto& e : ewma_) {
    sum += e.smoothed_s();
    worst = std::max(worst, e.smoothed_s());
  }
  const double mean = sum / static_cast<double>(ranks_);
  return mean > 0.0 ? worst / mean : 1.0;
}

std::vector<double> LoadBalancer::measured_speeds() const {
  // elements_r ~ weights_r and time_r ~ share_r / speed_r, so the live
  // speed estimate is weights_r / smoothed_r (normalized to mean 1).
  std::vector<double> speed(static_cast<std::size_t>(ranks_), 1.0);
  double sum = 0.0;
  for (int r = 0; r < ranks_; ++r) {
    const double t = ewma_[static_cast<std::size_t>(r)].smoothed_s();
    if (t <= 0.0) {
      return std::vector<double>(static_cast<std::size_t>(ranks_), 1.0);
    }
    speed[static_cast<std::size_t>(r)] =
        weights_[static_cast<std::size_t>(r)] / t;
    sum += speed[static_cast<std::size_t>(r)];
  }
  for (double& s : speed) {
    s *= static_cast<double>(ranks_) / sum;
  }
  return speed;
}

void LoadBalancer::record_rebalance() {
  if (policy_.mode == "repartition") {
    // One jump to speed-proportional capacity shares.
    weights_ = measured_speeds();
  } else {
    // One conservative Jacobi diffusion sweep on the rank line: each
    // neighbour pair moves an eta-bounded slice of weight from the slower
    // rank to the faster one. All deltas are computed from the old state,
    // then applied, so the sweep is order-independent.
    std::vector<double> delta(static_cast<std::size_t>(ranks_), 0.0);
    for (int r = 0; r + 1 < ranks_; ++r) {
      const double ta = ewma_[static_cast<std::size_t>(r)].smoothed_s();
      const double tb = ewma_[static_cast<std::size_t>(r + 1)].smoothed_s();
      if (ta <= 0.0 || tb <= 0.0) {
        continue;
      }
      const double gap = (ta - tb) / (ta + tb);  // >0: r is slower
      const double move =
          policy_.diffusion_eta * gap *
          std::min(weights_[static_cast<std::size_t>(r)],
                   weights_[static_cast<std::size_t>(r + 1)]);
      delta[static_cast<std::size_t>(r)] -= move;
      delta[static_cast<std::size_t>(r + 1)] += move;
    }
    for (int r = 0; r < ranks_; ++r) {
      weights_[static_cast<std::size_t>(r)] +=
          delta[static_cast<std::size_t>(r)];
    }
  }
  // Clamp and renormalize to mean 1 so the weighted partitioners always
  // see bounded, strictly positive capacity shares.
  double sum = 0.0;
  for (double& w : weights_) {
    w = std::clamp(w, policy_.min_weight, policy_.max_weight);
    sum += w;
  }
  for (double& w : weights_) {
    w *= static_cast<double>(ranks_) / sum;
  }
  // Post-rebalance measurements start fresh: the old EWMAs describe a
  // partition that no longer exists.
  ewma_.assign(static_cast<std::size_t>(ranks_),
               obs::DriftEstimator(0.0, 0.5));
  ++outcome_.rebalances;
}

}  // namespace hetero::lb
