#pragma once

/// \file load_balancer.hpp
/// The dynamic load-balancing control loop that makes the partitioners earn
/// their keep under per-rank speed skew (resil::SkewPlan). Modeled after
/// Solfec's domain-balancing design: measure per-rank step times, smooth
/// them (obs::DriftEstimator EWMAs, one per rank), and when the
/// max-over-mean imbalance crosses a threshold, emit new per-rank capacity
/// weights for a weighted repartition (partition_rcb/partition_greedy with
/// weights) — either in one jump ("repartition") or as bounded diffusive
/// transfers between rank-line neighbours ("diffuse", Cybenko-style).
///
/// Deterministic by construction: the state is a pure fold over the
/// observed per-rank step-time stream. Direct-mode runs allgather each
/// rank's step seconds so every rank folds the *same* vector, hands every
/// simulated rank an identical LoadBalancer copy, and adopts rank 0's copy
/// after the attempt — the same no-communication consensus pattern the
/// re-brokering controller uses (docs/rebrokering.md).

#include <span>
#include <string>
#include <vector>

#include "obs/drift.hpp"

namespace hetero::lb {

/// When and how to rebalance. Default: disabled.
struct BalancePolicy {
  bool enabled = false;
  /// Trigger when max(smoothed rank time) / mean(smoothed rank time)
  /// exceeds this. Must stay above the natural imbalance of a calm run
  /// (block decompositions sit near 1.0) so zero-skew runs never trigger.
  double threshold = 1.25;
  /// Steps between imbalance checks.
  int check_every = 1;
  /// Observations per rank required before the first trigger (EWMA warm-up).
  int min_steps = 2;
  /// Rebalances allowed per run (bounds checkpoint/rebuild churn).
  int max_rebalances = 4;
  /// "repartition" jumps straight to speed-proportional weights;
  /// "diffuse" moves bounded weight between rank-line neighbours per
  /// rebalance and may need several rounds to converge.
  std::string mode = "repartition";
  /// Per-rank weight clamp, relative to the mean weight 1.0: keeps extreme
  /// measurements from starving a rank below one element.
  double min_weight = 0.25;
  double max_weight = 4.0;
  /// Diffusive step size: fraction of the pairwise weight gap moved per
  /// neighbour exchange (0 < eta <= 1).
  double diffusion_eta = 0.5;

  bool valid_mode() const {
    return mode == "repartition" || mode == "diffuse";
  }
};

/// What the balancer did, for the experiment ledger and the bench tables.
struct BalanceOutcome {
  int checks = 0;
  int rebalances = 0;
  /// Imbalance at the last check (1.0 until the first one).
  double last_imbalance = 1.0;
};

class LoadBalancer {
 public:
  /// Disabled balancer: observe() never triggers.
  LoadBalancer() = default;
  LoadBalancer(const BalancePolicy& policy, int ranks);

  bool enabled() const { return policy_.enabled && ranks_ > 1; }
  const BalancePolicy& policy() const { return policy_; }

  /// Folds the allgathered per-rank step seconds of step `step` into the
  /// EWMAs and returns true when a rebalance should fire now. Every rank
  /// must pass the identical vector (it is an allgather result), so every
  /// copy reaches the same verdict without communication.
  bool observe(int step, std::span<const double> rank_step_s);

  /// max(smoothed) / mean(smoothed) over ranks; 1.0 before observations.
  double imbalance() const;

  /// Commits a rebalance: folds the measured speeds into the current
  /// weights (full jump or one diffusion sweep, per policy.mode), clamps to
  /// [min_weight, max_weight], renormalizes to mean 1, and resets the
  /// EWMAs so post-rebalance measurements start fresh.
  void record_rebalance();

  /// Current per-rank capacity weights (mean 1.0); uniform until the first
  /// record_rebalance(). Feed to the weighted partitioners.
  const std::vector<double>& rank_weights() const { return weights_; }

  const BalanceOutcome& outcome() const { return outcome_; }

 private:
  std::vector<double> measured_speeds() const;

  BalancePolicy policy_;
  int ranks_ = 0;
  std::vector<obs::DriftEstimator> ewma_;
  std::vector<double> weights_;
  BalanceOutcome outcome_;
};

}  // namespace hetero::lb
