#include "apps/ns_solver.hpp"

#include <cmath>
#include <span>

#include "fem/bdf.hpp"
#include "fem/error_norms.hpp"
#include "la/kernels.hpp"
#include "partition/partitioner.hpp"
#include "support/error.hpp"

namespace hetero::apps {

namespace {
constexpr double kA = M_PI / 4.0;
constexpr double kD = M_PI / 2.0;
// Component-expansion factor of the block gid scheme: 0..2 velocity, 3
// pressure. Velocity gids live on the (possibly richer) velocity space;
// pressure gids on the P1 vertex space — disjoint by construction.
constexpr int kComps = 4;
}  // namespace

double es_velocity(const mesh::Vec3& p, double t, double nu, int comp) {
  const double f = std::exp(-nu * kD * kD * t);
  const double x = p.x;
  const double y = p.y;
  const double z = p.z;
  switch (comp) {
    case 0:
      return -kA *
             (std::exp(kA * x) * std::sin(kA * y + kD * z) +
              std::exp(kA * z) * std::cos(kA * x + kD * y)) *
             f;
    case 1:
      return -kA *
             (std::exp(kA * y) * std::sin(kA * z + kD * x) +
              std::exp(kA * x) * std::cos(kA * y + kD * z)) *
             f;
    case 2:
      return -kA *
             (std::exp(kA * z) * std::sin(kA * x + kD * y) +
              std::exp(kA * y) * std::cos(kA * z + kD * x)) *
             f;
    default:
      throw Error("es_velocity: component must be 0, 1 or 2");
  }
}

double es_pressure(const mesh::Vec3& p, double t, double nu) {
  const double f2 = std::exp(-2.0 * nu * kD * kD * t);
  const double x = p.x;
  const double y = p.y;
  const double z = p.z;
  return -(kA * kA / 2.0) *
         (std::exp(2.0 * kA * x) + std::exp(2.0 * kA * y) +
          std::exp(2.0 * kA * z) +
          2.0 * std::sin(kA * x + kD * y) * std::cos(kA * z + kD * x) *
              std::exp(kA * (y + z)) +
          2.0 * std::sin(kA * y + kD * z) * std::cos(kA * x + kD * y) *
              std::exp(kA * (z + x)) +
          2.0 * std::sin(kA * z + kD * x) * std::cos(kA * y + kD * z) *
              std::exp(kA * (x + y))) *
         f2;
}

la::GlobalId NsSolver::vel_gid(int dof, int comp) const {
  return fem::FeSpace::block_gid(space_v_->dof_gid(dof), comp, kComps);
}

la::GlobalId NsSolver::pres_gid(int dof) const {
  return fem::FeSpace::block_gid(space_p_->dof_gid(dof), 3, kComps);
}

NsSolver::NsSolver(simmpi::Comm& comm, NsConfig config)
    : comm_(&comm), config_(std::move(config)) {
  HETERO_REQUIRE(config_.global_cells >= 1, "NS needs at least one cell");
  HETERO_REQUIRE(config_.viscosity > 0.0 && config_.density > 0.0,
                 "NS needs positive viscosity and density");
  HETERO_REQUIRE(config_.velocity_order == 1 || config_.velocity_order == 2,
                 "velocity_order must be 1 (P1/P1 stab) or 2 (Taylor-Hood)");
  spec_ = mesh::BoxMeshSpec{config_.global_cells, config_.global_cells,
                            config_.global_cells,
                            {-1.0, -1.0, -1.0},
                            {1.0, 1.0, 1.0}};
  // Step (i): block decomposition by default; capacity-weighted RCB over
  // the global mesh when a rebalance supplied per-rank weights (see
  // rd_solver.cpp — the same deterministic no-communication agreement).
  if (config_.rank_weights.empty()) {
    mesh::BlockDecomposition decomposition(spec_, comm.size());
    submesh_ = mesh::build_box_submesh(spec_, decomposition.box(comm.rank()));
  } else {
    HETERO_REQUIRE(
        static_cast<int>(config_.rank_weights.size()) == comm.size(),
        "NS rank_weights needs exactly one weight per rank");
    const mesh::TetMesh global = mesh::build_box_mesh(spec_);
    const std::vector<int> part = partition::partition_rcb(
        global, comm.size(), std::span<const double>(config_.rank_weights));
    submesh_ = partition::extract_submesh(global, part, comm.rank());
    HETERO_REQUIRE(submesh_.tet_count() > 0,
                   "weighted repartition left a rank without elements; "
                   "loosen the weight clamp or use fewer ranks");
  }
  space_v_ = std::make_unique<fem::FeSpace>(submesh_, config_.velocity_order,
                                            spec_.vertex_count());
  space_p_ = std::make_unique<fem::FeSpace>(submesh_, 1, spec_.vertex_count());
  const int quad = config_.velocity_order == 2 ? 4 : 2;
  kernel_v_ = std::make_unique<fem::ElementKernel>(*space_v_, quad);
  kernel_p_ = std::make_unique<fem::ElementKernel>(*space_p_, quad);
  kernel_vp_ =
      std::make_unique<fem::MixedElementKernel>(*space_v_, *space_p_, quad);

  // Taylor-Hood is inf-sup stable: keep only a tiny pressure-Laplacian
  // regularization (so the local ILU0 has pressure pivots) unless the user
  // asked for something specific.
  stab_delta_ = config_.stabilization;
  if (config_.velocity_order == 2 && config_.stabilization == 0.05) {
    stab_delta_ = 0.002;
  }

  std::vector<la::GlobalId> touched;
  touched.reserve(static_cast<std::size_t>(space_v_->local_dof_count()) * 3 +
                  static_cast<std::size_t>(space_p_->local_dof_count()));
  for (int d = 0; d < space_v_->local_dof_count(); ++d) {
    for (int c = 0; c < 3; ++c) {
      touched.push_back(vel_gid(d, c));
    }
  }
  for (int d = 0; d < space_p_->local_dof_count(); ++d) {
    touched.push_back(pres_gid(d));
  }
  builder_ = std::make_unique<la::DistSystemBuilder>(comm, std::move(touched));
  precond_ = solvers::make_preconditioner(config_.preconditioner);
  geo_cache_.emplace(submesh_);

  time_ = config_.t0;
  assemble();  // freezes the structure; history terms are zero here
  workspace_ = std::make_unique<solvers::KrylovWorkspace>(builder_->map());
  x_.emplace(builder_->map());
  if (la::kernel_mode() == la::KernelMode::kFast) {
    // Built here, outside the timed step phases, so every step has the same
    // communication schedule — including the first step after a checkpoint
    // restart re-creates the solver mid-run.
    build_dirichlet_plan();
  }

  const double nu = config_.viscosity / config_.density;
  auto interpolate_state = [&](double t) {
    la::DistVector v(builder_->map());
    for (int d = 0; d < space_v_->local_dof_count(); ++d) {
      const mesh::Vec3& xd = space_v_->dof_coord(d);
      for (int c = 0; c < 3; ++c) {
        const int l = builder_->map().local(vel_gid(d, c));
        if (l != la::kInvalidLocal) {
          v[l] = es_velocity(xd, t, nu, c);
        }
      }
    }
    for (int d = 0; d < space_p_->local_dof_count(); ++d) {
      const int l = builder_->map().local(pres_gid(d));
      if (l != la::kInvalidLocal) {
        v[l] = es_pressure(space_p_->dof_coord(d), t, nu);
      }
    }
    v.update_ghosts(*comm_, builder_->halo());
    return v;
  };
  x_prev_.emplace(interpolate_state(time_ - config_.dt));
  x_now_.emplace(interpolate_state(time_));
}

std::vector<double> NsSolver::velocity_values(const la::DistVector& v,
                                              int comp) const {
  std::vector<double> out(
      static_cast<std::size_t>(space_v_->local_dof_count()), 0.0);
  for (int d = 0; d < space_v_->local_dof_count(); ++d) {
    const int l = builder_->map().local(vel_gid(d, comp));
    HETERO_CHECK(l != la::kInvalidLocal);
    out[static_cast<std::size_t>(d)] = v[l];
  }
  return out;
}

double NsSolver::solution_at(int dof, int comp) const {
  const la::GlobalId gid = comp < 3 ? vel_gid(dof, comp) : pres_gid(dof);
  const int l = builder_->map().local(gid);
  HETERO_REQUIRE(l != la::kInvalidLocal, "solution_at: dof not local");
  return (*x_now_)[l];
}

void NsSolver::assemble() {
  const auto bdf = fem::bdf_scheme(2);
  const auto ext = fem::bdf_extrapolation(2);
  const double rho = config_.density;
  const double mu = config_.viscosity;
  const double mass_coeff = rho * bdf.alpha / config_.dt;

  const int nv = kernel_v_->n();
  const int np = kernel_p_->n();
  const std::size_t nvnv = static_cast<std::size_t>(nv * nv);
  const std::size_t npnp = static_cast<std::size_t>(np * np);
  const std::size_t nvnp = static_cast<std::size_t>(nv * np);
  me_.resize(nvnv);
  ke_.resize(nvnv);
  ce_.resize(nvnv);
  kp_.resize(npnp);
  for (auto& d : de_) {
    d.resize(nvnp);
  }
  vgids_.resize(static_cast<std::size_t>(nv));
  pgids_.resize(static_cast<std::size_t>(np));
  beta_.resize(kernel_v_->quad_count());
  beta_c_.resize(kernel_v_->quad_count());

  // Extrapolated convective velocity u* = 2 u^k - u^{k-1} and BDF history,
  // in velocity-space-local ordering per component. Empty pre-init.
  const bool have_state = x_now_.has_value();
  if (have_state) {
    x_now_->update_ghosts(*comm_, builder_->halo());
    x_prev_->update_ghosts(*comm_, builder_->halo());
    for (int c = 0; c < 3; ++c) {
      const auto now_vals = velocity_values(*x_now_, c);
      const auto prev_vals = velocity_values(*x_prev_, c);
      ustar_[c].resize(now_vals.size());
      hist_[c].resize(now_vals.size());
      for (std::size_t i = 0; i < now_vals.size(); ++i) {
        ustar_[c][i] = ext[0] * now_vals[i] + ext[1] * prev_vals[i];
        hist_[c][i] = rho *
                      (bdf.beta[0] * now_vals[i] +
                       bdf.beta[1] * prev_vals[i]) /
                      config_.dt;
      }
    }
  }

  builder_->begin_assembly();
  for (std::size_t t = 0; t < submesh_.tet_count(); ++t) {
    kernel_v_->mass(t, me_);
    kernel_v_->stiffness(t, ke_);
    kernel_p_->stiffness(t, kp_);
    for (int c = 0; c < 3; ++c) {
      // D_c(i,j) = int d(phi^v_i)/dx_c psi^p_j.
      kernel_vp_->grad_row_times_col(t, c, de_[c]);
    }
    // Convection at quadrature points from the extrapolated velocity.
    if (have_state) {
      for (int c = 0; c < 3; ++c) {
        kernel_v_->eval_at_quad(t, ustar_[c], beta_c_);
        for (std::size_t q = 0; q < beta_.size(); ++q) {
          if (c == 0) beta_[q].x = beta_c_[q];
          if (c == 1) beta_[q].y = beta_c_[q];
          if (c == 2) beta_[q].z = beta_c_[q];
        }
      }
    } else {
      std::fill(beta_.begin(), beta_.end(), mesh::Vec3{});
    }
    kernel_v_->convection(t, beta_, ce_);

    // Pressure-Laplacian coefficient: delta h_K^2 / mu.
    const auto& geo = geo_cache_->get(t);
    const double h2 = std::cbrt(geo.det) * std::cbrt(geo.det);
    const double stab = stab_delta_ * h2 / mu;

    space_v_->tet_dof_gids(t, vgids_);
    // Pressure gids carry the component shift directly.
    for (int j = 0; j < np; ++j) {
      pgids_[static_cast<std::size_t>(j)] = fem::FeSpace::block_gid(
          space_p_->dof_gid(space_p_->tet_dofs(t)[static_cast<std::size_t>(j)]),
          3, kComps);
    }
    const auto vdofs = space_v_->tet_dofs(t);

    for (int i = 0; i < nv; ++i) {
      const la::GlobalId gi = vgids_[static_cast<std::size_t>(i)];
      for (int c = 0; c < 3; ++c) {
        const la::GlobalId row = fem::FeSpace::block_gid(gi, c, kComps);
        double rhs_i = 0.0;
        for (int j = 0; j < nv; ++j) {
          const std::size_t ij = static_cast<std::size_t>(i * nv + j);
          // Momentum: (rho alpha/dt) M + mu K + rho C on the (c, c) block.
          builder_->add_matrix(
              row,
              fem::FeSpace::block_gid(vgids_[static_cast<std::size_t>(j)], c,
                                      kComps),
              mass_coeff * me_[ij] + mu * ke_[ij] + rho * ce_[ij]);
          if (have_state) {
            rhs_i += me_[ij] * hist_[c][static_cast<std::size_t>(vdofs[j])];
          }
        }
        // Pressure gradient: -(p, d v_c / d x_c) = -D_c(i, j) p_j.
        for (int j = 0; j < np; ++j) {
          builder_->add_matrix(row, pgids_[static_cast<std::size_t>(j)],
                               -de_[c][static_cast<std::size_t>(i * np + j)]);
        }
        builder_->add_rhs(row, rhs_i);
      }
    }
    // Continuity rows: (q, div u) + stabilization.
    for (int j = 0; j < np; ++j) {
      const la::GlobalId prow = pgids_[static_cast<std::size_t>(j)];
      for (int i = 0; i < nv; ++i) {
        for (int c = 0; c < 3; ++c) {
          builder_->add_matrix(
              prow,
              fem::FeSpace::block_gid(vgids_[static_cast<std::size_t>(i)], c,
                                      kComps),
              de_[c][static_cast<std::size_t>(i * np + j)]);
        }
      }
      for (int jj = 0; jj < np; ++jj) {
        builder_->add_matrix(prow, pgids_[static_cast<std::size_t>(jj)],
                             stab * kp_[static_cast<std::size_t>(j * np + jj)]);
      }
      builder_->add_rhs(prow, 0.0);
    }
  }
  const double per_tet_entries =
      3.0 * nv * nv + 6.0 * nv * np + static_cast<double>(np) * np;
  comm_->compute(config_.cpu.scale(static_cast<double>(submesh_.tet_count()) *
                                   per_tet_entries *
                                   config_.cpu.assembly_sec_per_entry));
  builder_->finalize(*comm_);
}

void NsSolver::build_dirichlet_plan() {
  const double lo = -1.0 + 1e-12;
  const double hi = 1.0 - 1e-12;
  auto on_boundary = [lo, hi](const mesh::Vec3& x) {
    return x.x < lo || x.x > hi || x.y < lo || x.y > hi || x.z < lo ||
           x.z > hi;
  };
  auto corner = [lo](const mesh::Vec3& x) {
    return x.x < lo && x.y < lo && x.z < lo;
  };
  // Velocity Dirichlet everywhere (velocity space, comps 0..2); pressure
  // pinned at the (-1,-1,-1) corner (pressure space, comp 3). Both spaces
  // write into one constraint set on the block map, in the same order as
  // the reference path's two dof sweeps.
  dirichlet_ = std::make_unique<fem::DirichletPlan>(
      *comm_, builder_->map(), builder_->halo(),
      [&](const std::function<void(int, const mesh::Vec3&, int)>& add) {
        for (int d = 0; d < space_v_->local_dof_count(); ++d) {
          const mesh::Vec3& x = space_v_->dof_coord(d);
          if (!on_boundary(x)) {
            continue;
          }
          for (int c = 0; c < 3; ++c) {
            const int l = builder_->map().local(vel_gid(d, c));
            if (l != la::kInvalidLocal && builder_->map().is_owned_local(l)) {
              add(l, x, c);
            }
          }
        }
        for (int d = 0; d < space_p_->local_dof_count(); ++d) {
          const mesh::Vec3& x = space_p_->dof_coord(d);
          if (!corner(x)) {
            continue;
          }
          const int l = builder_->map().local(pres_gid(d));
          if (l != la::kInvalidLocal && builder_->map().is_owned_local(l)) {
            add(l, x, 3);
          }
        }
      });
}

StepRecord NsSolver::step() {
  StepRecord record;
  const double t_new = time_ + config_.dt;
  const double nu = config_.viscosity / config_.density;

  comm_->barrier();
  const double t_begin = comm_->now();

  // ---- assembly -----------------------------------------------------------
  assemble();
  const double lo = -1.0 + 1e-12;
  const double hi = 1.0 - 1e-12;
  auto on_boundary = [lo, hi](const mesh::Vec3& x) {
    return x.x < lo || x.x > hi || x.y < lo || x.y > hi || x.z < lo ||
           x.z > hi;
  };
  auto corner = [lo](const mesh::Vec3& x) {
    return x.x < lo && x.y < lo && x.z < lo;
  };
  // Velocity Dirichlet everywhere from the exact solution (over the
  // velocity space); pressure pinned at the (-1,-1,-1) corner (pressure
  // space). Both spaces write into one constraint set on the block map.
  // Values come from es_velocity (comp 0..2) / es_pressure (comp 3).
  auto bc_value = [&](const mesh::Vec3& p, int c) {
    return c < 3 ? es_velocity(p, t_new, nu, c) : es_pressure(p, t_new, nu);
  };
  x_->copy_from(*x_now_);
  if (la::kernel_mode() == la::KernelMode::kFast) {
    // The plan normally exists already (built in the constructor, outside
    // the timed phases); the fallback covers a mode switch after it.
    if (!dirichlet_) {
      build_dirichlet_plan();
    }
    dirichlet_->update_block(*comm_, builder_->halo(), bc_value);
    dirichlet_->apply(builder_->matrix(), builder_->rhs(), *x_);
  } else {
    fem::DirichletData bc(builder_->map());
    for (int d = 0; d < space_v_->local_dof_count(); ++d) {
      const mesh::Vec3& x = space_v_->dof_coord(d);
      if (!on_boundary(x)) {
        continue;
      }
      for (int c = 0; c < 3; ++c) {
        const int l = builder_->map().local(vel_gid(d, c));
        if (l != la::kInvalidLocal && builder_->map().is_owned_local(l)) {
          bc.flags[l] = 1.0;
          bc.values[l] = es_velocity(x, t_new, nu, c);
        }
      }
    }
    for (int d = 0; d < space_p_->local_dof_count(); ++d) {
      const mesh::Vec3& x = space_p_->dof_coord(d);
      if (!corner(x)) {
        continue;
      }
      const int l = builder_->map().local(pres_gid(d));
      if (l != la::kInvalidLocal && builder_->map().is_owned_local(l)) {
        bc.flags[l] = 1.0;
        bc.values[l] = es_pressure(x, t_new, nu);
      }
    }
    bc.flags.update_ghosts(*comm_, builder_->halo());
    bc.values.update_ghosts(*comm_, builder_->halo());
    fem::apply_dirichlet(builder_->matrix(), builder_->rhs(), *x_, bc);
  }
  const double t_assembled = comm_->now();

  // ---- preconditioner ------------------------------------------------------
  precond_->build(builder_->matrix());
  const auto nnz = static_cast<double>(builder_->matrix().local().nonzeros());
  comm_->compute(config_.cpu.scale(nnz * config_.cpu.ilu_sec_per_nnz));
  const double t_preconditioned = comm_->now();

  // ---- solve ----------------------------------------------------------------
  solvers::SolverConfig sc;
  sc.rel_tolerance = config_.solver_tolerance;
  sc.max_iterations = config_.max_solver_iterations;
  sc.restart = config_.gmres_restart;
  HETERO_REQUIRE(config_.krylov == "gmres" || config_.krylov == "bicgstab",
                 "NS supports the gmres and bicgstab solvers");
  const auto report =
      config_.krylov == "gmres"
          ? solvers::gmres_solve(*comm_, builder_->matrix(), *precond_,
                                 builder_->rhs(), *x_, sc, *workspace_)
          : solvers::bicgstab_solve(*comm_, builder_->matrix(), *precond_,
                                    builder_->rhs(), *x_, sc, *workspace_);
  const auto rows = static_cast<double>(builder_->map().owned_count());
  comm_->compute(config_.cpu.scale(
      report.iterations *
      (nnz * (config_.cpu.spmv_sec_per_nnz + config_.cpu.trisolve_sec_per_nnz) +
       12.0 * rows * config_.cpu.vec_sec_per_entry)));
  const double t_solved = comm_->now();

  x_prev_->copy_from(*x_now_);
  x_now_->copy_from(*x_);
  time_ = t_new;
  ++steps_;

  record.time = time_;
  record.solver_iterations = report.iterations;
  record.solver_converged = report.converged;
  record.residual = report.final_residual;
  record.work.local_tets = static_cast<std::int64_t>(submesh_.tet_count());
  record.work.local_rows = builder_->map().owned_count();
  record.work.local_nonzeros = builder_->matrix().local().nonzeros();
  record.work.matrix_entries_assembled =
      static_cast<std::int64_t>(submesh_.tet_count()) *
      (3 * kernel_v_->n() * kernel_v_->n() +
       6 * kernel_v_->n() * kernel_p_->n() +
       kernel_p_->n() * kernel_p_->n());
  record.work.halo_doubles =
      static_cast<std::int64_t>(builder_->halo().import_size());
  record.work.solver_iterations = report.iterations;

  const double phases[4] = {t_assembled - t_begin,
                            t_preconditioned - t_assembled,
                            t_solved - t_preconditioned, t_solved - t_begin};
  const auto maxed = comm_->allreduce(std::span<const double>(phases, 4),
                                      simmpi::ReduceOp::kMax);
  record.timing.assembly_s = maxed[0];
  record.timing.preconditioner_s = maxed[1];
  record.timing.solve_s = maxed[2];
  record.timing.total_s = maxed[3];

  if (config_.collect_rank_step_s) {
    const double mine = t_solved - t_begin;
    record.rank_step_s = comm_->allgatherv(std::span<const double>(&mine, 1));
  }

  trace_step_phases(comm_->world_rank(), t_begin, t_assembled,
                    t_preconditioned, t_solved);
  if (comm_->rank() == 0) {
    record_phase_metrics(record.timing);
  }

  if (config_.compute_errors) {
    x_now_->update_ghosts(*comm_, builder_->halo());
    // Max nodal velocity error over owned dofs and components.
    double local = 0.0;
    for (int d = 0; d < space_v_->local_dof_count(); ++d) {
      for (int c = 0; c < 3; ++c) {
        const int l = builder_->map().local(vel_gid(d, c));
        if (l == la::kInvalidLocal || !builder_->map().is_owned_local(l)) {
          continue;
        }
        local = std::max(local,
                         std::fabs((*x_now_)[l] -
                                   es_velocity(space_v_->dof_coord(d), time_,
                                               nu, c)));
      }
    }
    record.nodal_error = comm_->allreduce(local, simmpi::ReduceOp::kMax);
    // L2 error of the first velocity component via the element kernel.
    const auto u0 = velocity_values(*x_now_, 0);
    double l2 = 0.0;
    std::vector<double> uh(kernel_v_->quad_count());
    std::vector<mesh::Vec3> xq(kernel_v_->quad_count());
    for (std::size_t t = 0; t < submesh_.tet_count(); ++t) {
      kernel_v_->eval_at_quad(t, u0, uh);
      kernel_v_->quad_points(t, xq);
      const auto& geo = geo_cache_->get(t);
      for (std::size_t q = 0; q < uh.size(); ++q) {
        const double diff = uh[q] - es_velocity(xq[q], time_, nu, 0);
        l2 += kernel_v_->table().points[q].weight * geo.det * diff * diff;
      }
    }
    record.l2_error =
        std::sqrt(comm_->allreduce(l2, simmpi::ReduceOp::kSum));
  }
  return record;
}

void NsSolver::restore_state(const la::DistVector& x_now,
                             const la::DistVector& x_prev, double time) {
  x_now_->copy_from(x_now);
  x_prev_->copy_from(x_prev);
  time_ = time;
}

std::vector<StepRecord> NsSolver::run(int steps) {
  std::vector<StepRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    records.push_back(step());
  }
  return records;
}

}  // namespace hetero::apps
