#include "apps/rd_solver.hpp"

#include <cmath>
#include <span>

#include "fem/bdf.hpp"
#include "fem/error_norms.hpp"
#include "la/kernels.hpp"
#include "partition/partitioner.hpp"
#include "support/error.hpp"

namespace hetero::apps {

double rd_exact_solution(const mesh::Vec3& x, double t) {
  return t * t * (x.x * x.x + x.y * x.y + x.z * x.z);
}

namespace {
bool on_unit_box_boundary(const mesh::Vec3& x) {
  const double eps = 1e-12;
  return x.x < eps || x.x > 1.0 - eps || x.y < eps || x.y > 1.0 - eps ||
         x.z < eps || x.z > 1.0 - eps;
}
}  // namespace

RdSolver::RdSolver(simmpi::Comm& comm, RdConfig config)
    : comm_(&comm), config_(std::move(config)) {
  HETERO_REQUIRE(config_.global_cells >= 1, "RD needs at least one cell");
  HETERO_REQUIRE(config_.t0 > 0.0,
                 "RD coefficients are singular at t = 0; pick t0 > 0");
  spec_ = mesh::BoxMeshSpec{config_.global_cells, config_.global_cells,
                            config_.global_cells};

  // Step (i): partition the domain. Default: every rank builds only its
  // structured block. With capacity weights (a rebalance under per-rank
  // skew), every rank runs the same deterministic weighted RCB over the
  // global mesh and extracts its share — pure functions of the inputs, so
  // all ranks agree without communication.
  if (config_.rank_weights.empty()) {
    mesh::BlockDecomposition decomposition(spec_, comm.size());
    submesh_ = mesh::build_box_submesh(spec_, decomposition.box(comm.rank()));
  } else {
    HETERO_REQUIRE(
        static_cast<int>(config_.rank_weights.size()) == comm.size(),
        "RD rank_weights needs exactly one weight per rank");
    const mesh::TetMesh global = mesh::build_box_mesh(spec_);
    const std::vector<int> part = partition::partition_rcb(
        global, comm.size(), std::span<const double>(config_.rank_weights));
    submesh_ = partition::extract_submesh(global, part, comm.rank());
    HETERO_REQUIRE(submesh_.tet_count() > 0,
                   "weighted repartition left a rank without elements; "
                   "loosen the weight clamp or use fewer ranks");
  }
  space_ = std::make_unique<fem::FeSpace>(submesh_, config_.order,
                                          spec_.vertex_count());
  kernel_ = std::make_unique<fem::ElementKernel>(*space_,
                                                 config_.order == 2 ? 4 : 2);
  builder_ = std::make_unique<la::DistSystemBuilder>(comm, space_->dof_gids());
  precond_ = solvers::make_preconditioner(config_.preconditioner);

  // First assembly freezes the structure so later steps replay cheaply.
  time_ = config_.t0;
  assemble(time_ + config_.dt);
  workspace_ = std::make_unique<solvers::KrylovWorkspace>(builder_->map());
  x_.emplace(builder_->map());
  if (la::kernel_mode() == la::KernelMode::kFast) {
    // Built here, outside the timed step phases, so every step has the same
    // communication schedule — including the first step after a checkpoint
    // restart re-creates the solver mid-run.
    dirichlet_ = std::make_unique<fem::DirichletPlan>(
        *comm_, *space_, builder_->map(), builder_->halo(),
        on_unit_box_boundary);
  }

  // Two exact time levels prime BDF2 (the paper also knows the exact
  // solution and uses it for initial/boundary data).
  u_prev_.emplace(fem::interpolate(
      comm, *space_, builder_->map(), builder_->halo(),
      [&](const mesh::Vec3& x) { return rd_exact_solution(x, time_ - config_.dt); }));
  u_now_.emplace(fem::interpolate(
      comm, *space_, builder_->map(), builder_->halo(),
      [&](const mesh::Vec3& x) { return rd_exact_solution(x, time_); }));
}

void RdSolver::assemble(double t_new) {
  // Weak form at t_{k+1}:
  //   (alpha/dt) (u,v) + mu(t) (grad u, grad v) + sigma(t) (u,v)
  //     = (-6, v) + (1/dt) (beta0 u^k + beta1 u^{k-1}, v)
  // with mu = 1/t^2, sigma = -2/t.
  const auto bdf = fem::bdf_scheme(config_.time_order);
  const double mu = 1.0 / (t_new * t_new);
  const double sigma = -2.0 / t_new;
  const double mass_coeff = bdf.alpha / config_.dt + sigma;

  const int n = kernel_->n();
  me_.resize(static_cast<std::size_t>(n * n));
  ke_.resize(static_cast<std::size_t>(n * n));
  fe_.resize(static_cast<std::size_t>(n));
  ae_.resize(static_cast<std::size_t>(n * n));
  re_.resize(static_cast<std::size_t>(n));
  gids_.resize(static_cast<std::size_t>(n));
  const fem::SpatialFn source = [](const mesh::Vec3&) { return -6.0; };

  // History values in space-local ordering (absent on the very first call,
  // before the initial conditions exist: rhs history terms are zero then,
  // which is fine because that call only freezes the structure).
  hist_.clear();
  if (u_now_) {
    u_now_->update_ghosts(*comm_, builder_->halo());
    u_prev_->update_ghosts(*comm_, builder_->halo());
    const auto now_vals = fem::space_values(*space_, builder_->map(), *u_now_);
    const auto prev_vals =
        fem::space_values(*space_, builder_->map(), *u_prev_);
    hist_.resize(now_vals.size());
    for (std::size_t i = 0; i < hist_.size(); ++i) {
      hist_[i] = (bdf.beta[0] * now_vals[i] + bdf.beta[1] * prev_vals[i]) /
                 config_.dt;
    }
  }

  // The integrals are geometry-only; fast mode computes them once and
  // rescales the cached values on later assemblies (identical arithmetic:
  // the cached numbers are exactly what the quadrature sweep produced).
  const bool fast = la::kernel_mode() == la::KernelMode::kFast;
  const std::size_t tets = submesh_.tet_count();
  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  if (fast && !elems_cached_) {
    elem_me_.resize(tets * nn);
    elem_ke_.resize(tets * nn);
    elem_fe_.resize(tets * static_cast<std::size_t>(n));
  }

  builder_->begin_assembly();
  for (std::size_t t = 0; t < tets; ++t) {
    std::span<double> me(me_), ke(ke_), fe(fe_);
    if (fast) {
      me = std::span<double>(elem_me_.data() + t * nn, nn);
      ke = std::span<double>(elem_ke_.data() + t * nn, nn);
      fe = std::span<double>(elem_fe_.data() + t * static_cast<std::size_t>(n),
                             static_cast<std::size_t>(n));
    }
    if (!fast || !elems_cached_) {
      // One fused quadrature sweep (three separate sweeps in reference
      // mode; same element values either way).
      kernel_->mass_stiffness_load(t, source, me, ke, fe);
    }
    space_->tet_dof_gids(t, gids_);
    const auto dofs = space_->tet_dofs(t);
    for (int i = 0; i < n; ++i) {
      double rhs_i = fe[static_cast<std::size_t>(i)];
      for (int j = 0; j < n; ++j) {
        const double m_ij = me[static_cast<std::size_t>(i * n + j)];
        ae_[static_cast<std::size_t>(i * n + j)] =
            mass_coeff * m_ij + mu * ke[static_cast<std::size_t>(i * n + j)];
        if (!hist_.empty()) {
          rhs_i += m_ij * hist_[static_cast<std::size_t>(dofs[j])];
        }
      }
      re_[static_cast<std::size_t>(i)] = rhs_i;
    }
    // Row-major block scatter == the nested add_matrix/add_rhs sequence.
    builder_->add_dense_block(gids_, gids_, ae_);
    builder_->add_rhs_block(gids_, re_);
  }
  if (fast) {
    elems_cached_ = true;
  }
  // Charge the modeled element-computation cost to the virtual clock.
  const double entries = static_cast<double>(submesh_.tet_count()) *
                         static_cast<double>(n) * static_cast<double>(n);
  comm_->compute(config_.cpu.scale(entries * config_.cpu.assembly_sec_per_entry));
  builder_->finalize(*comm_);
}

StepRecord RdSolver::step() {
  StepRecord record;
  const double t_new = time_ + config_.dt;

  comm_->barrier();  // align clocks so phase maxima are meaningful
  const double t_begin = comm_->now();

  // ---- step (ii): assembly ----------------------------------------------
  assemble(t_new);
  const auto g = [&](const mesh::Vec3& x) {
    return rd_exact_solution(x, t_new);
  };
  x_->copy_from(*u_now_);  // warm start from the previous time level
  if (la::kernel_mode() == la::KernelMode::kFast) {
    // Frozen constraint set: values-only refresh + cached elimination. The
    // plan normally exists already (built in the constructor); the fallback
    // covers a mode switch after construction.
    if (!dirichlet_) {
      dirichlet_ = std::make_unique<fem::DirichletPlan>(
          *comm_, *space_, builder_->map(), builder_->halo(),
          on_unit_box_boundary);
    }
    dirichlet_->update(*comm_, builder_->halo(), g);
    dirichlet_->apply(builder_->matrix(), builder_->rhs(), *x_);
  } else {
    fem::DirichletData bc =
        fem::make_dirichlet(*comm_, *space_, builder_->map(),
                            builder_->halo(), on_unit_box_boundary, g);
    fem::apply_dirichlet(builder_->matrix(), builder_->rhs(), *x_, bc);
  }
  const double t_assembled = comm_->now();

  // ---- step (iiia): preconditioner ---------------------------------------
  precond_->build(builder_->matrix());
  const auto nnz = static_cast<double>(builder_->matrix().local().nonzeros());
  comm_->compute(config_.cpu.scale(nnz * config_.cpu.ilu_sec_per_nnz));
  const double t_preconditioned = comm_->now();

  // ---- step (iiib): solve -------------------------------------------------
  solvers::SolverConfig sc;
  sc.rel_tolerance = config_.solver_tolerance;
  sc.max_iterations = config_.max_solver_iterations;
  HETERO_REQUIRE(config_.krylov == "cg" || config_.krylov == "bicgstab",
                 "RD supports the cg and bicgstab solvers");
  const auto report =
      config_.krylov == "cg"
          ? solvers::cg_solve(*comm_, builder_->matrix(), *precond_,
                              builder_->rhs(), *x_, sc, *workspace_)
          : solvers::bicgstab_solve(*comm_, builder_->matrix(), *precond_,
                                    builder_->rhs(), *x_, sc, *workspace_);
  const auto rows = static_cast<double>(builder_->map().owned_count());
  comm_->compute(config_.cpu.scale(
      report.iterations *
      (nnz * (config_.cpu.spmv_sec_per_nnz + config_.cpu.trisolve_sec_per_nnz) +
       10.0 * rows * config_.cpu.vec_sec_per_entry)));
  const double t_solved = comm_->now();

  // Bookkeeping and reductions (not part of the timed phases).
  u_prev_->copy_from(*u_now_);
  u_now_->copy_from(*x_);
  time_ = t_new;
  ++steps_;

  record.time = time_;
  record.solver_iterations = report.iterations;
  record.solver_converged = report.converged;
  record.residual = report.final_residual;
  record.work.local_tets = static_cast<std::int64_t>(submesh_.tet_count());
  record.work.local_rows = builder_->map().owned_count();
  record.work.local_nonzeros = builder_->matrix().local().nonzeros();
  record.work.matrix_entries_assembled =
      static_cast<std::int64_t>(submesh_.tet_count()) * kernel_->n() *
      kernel_->n();
  record.work.halo_doubles =
      static_cast<std::int64_t>(builder_->halo().import_size());
  record.work.solver_iterations = report.iterations;

  // The paper reports the slowest rank per phase.
  const double phases[4] = {t_assembled - t_begin,
                            t_preconditioned - t_assembled,
                            t_solved - t_preconditioned, t_solved - t_begin};
  const auto maxed = comm_->allreduce(std::span<const double>(phases, 4),
                                      simmpi::ReduceOp::kMax);
  record.timing.assembly_s = maxed[0];
  record.timing.preconditioner_s = maxed[1];
  record.timing.solve_s = maxed[2];
  record.timing.total_s = maxed[3];

  if (config_.collect_rank_step_s) {
    // The balancer needs each rank's own step time, not the maximum: the
    // gap between them is exactly the imbalance signal.
    const double mine = t_solved - t_begin;
    record.rank_step_s =
        comm_->allgatherv(std::span<const double>(&mine, 1));
  }

  trace_step_phases(comm_->world_rank(), t_begin, t_assembled,
                    t_preconditioned, t_solved);
  if (comm_->rank() == 0) {
    record_phase_metrics(record.timing);
  }

  if (config_.compute_errors) {
    u_now_->update_ghosts(*comm_, builder_->halo());
    auto exact = [&](const mesh::Vec3& p) {
      return rd_exact_solution(p, time_);
    };
    record.nodal_error = fem::nodal_max_error(*comm_, *space_,
                                              builder_->map(), *u_now_, exact);
    record.l2_error =
        fem::l2_error(*comm_, *kernel_, builder_->map(), *u_now_, exact);
  }
  return record;
}

void RdSolver::restore_state(const la::DistVector& u_now,
                             const la::DistVector& u_prev, double time) {
  HETERO_REQUIRE(time > 0.0, "restore_state: time must be positive");
  u_now_->copy_from(u_now);
  u_prev_->copy_from(u_prev);
  time_ = time;
}

std::vector<StepRecord> RdSolver::run(int steps) {
  std::vector<StepRecord> records;
  records.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    records.push_back(step());
  }
  return records;
}

}  // namespace hetero::apps
