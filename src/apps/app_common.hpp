#pragma once

/// \file app_common.hpp
/// Shared application-level types: per-iteration phase timing (the paper's
/// assembly / preconditioner / solver split), work counters for the
/// performance model, and the CPU cost model hook that charges modeled
/// compute time to the virtual rank clocks.

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hetero::apps {

/// Per-core compute rates of the platform the job "runs on". Direct-mode
/// runs charge these to the virtual clocks so phase times reflect the
/// simulated machine rather than the host. All units: seconds.
struct CpuCostModel {
  // Rates are calibrated so a 20^3-elements-per-rank step reproduces the
  // per-iteration magnitudes the paper reports (Table II: ~4.8 s at one
  // rank on the EC2-class core). They reflect a 2012-era core running a
  // generic quadrature-loop FEM assembly, not a tuned modern kernel.

  /// Cost to compute and scatter one element matrix entry (quadrature
  /// loop + gather/scatter); multiplied by tets x (dofs/tet)^2.
  double assembly_sec_per_entry = 1.0e-6;
  /// ILU(0) factorization cost per local nonzero.
  double ilu_sec_per_nnz = 6.0e-7;
  /// One sparse matrix-vector product, per nonzero (bandwidth bound).
  double spmv_sec_per_nnz = 3.0e-8;
  /// Triangular solves of the preconditioner apply, per nonzero.
  double trisolve_sec_per_nnz = 4.0e-8;
  /// Vector ops (axpy/dot), per entry.
  double vec_sec_per_entry = 2.0e-9;

  /// Uniform speed scale: 1.0 = reference core; a 2x faster CPU halves
  /// every rate. Platform models set this.
  double speed_factor = 1.0;

  double scale(double seconds) const { return seconds / speed_factor; }
};

/// Work performed by one rank in one time step (inputs to the perf model).
struct WorkCounts {
  std::int64_t local_tets = 0;
  std::int64_t local_rows = 0;
  std::int64_t local_nonzeros = 0;
  std::int64_t matrix_entries_assembled = 0;
  std::int64_t halo_doubles = 0;
  int solver_iterations = 0;
};

/// Virtual-clock durations of the paper's phases, for one iteration.
/// Values are maxima over ranks (the paper reports the slowest rank).
struct IterationTiming {
  double assembly_s = 0.0;        // step (ii)
  double preconditioner_s = 0.0;  // step (iiia)
  double solve_s = 0.0;           // step (iiib)
  double total_s = 0.0;           // whole iteration including overheads
};

namespace detail {
/// Registry handles resolved once (lookup takes a mutex).
struct PhaseMetrics {
  obs::Counter& steps = obs::metrics().counter("app.steps");
  obs::Counter& assembly_s = obs::metrics().counter("app.phase.assembly_s");
  obs::Counter& preconditioner_s =
      obs::metrics().counter("app.phase.preconditioner_s");
  obs::Counter& solve_s = obs::metrics().counter("app.phase.solve_s");
  obs::Counter& total_s = obs::metrics().counter("app.phase.total_s");
};

inline PhaseMetrics& phase_metrics() {
  static PhaseMetrics metrics;
  return metrics;
}
}  // namespace detail

/// Emits this rank's phase spans for one time step onto its trace row. The
/// timestamps are the virtual-clock marks the applications already take.
inline void trace_step_phases(int rank, double t_begin, double t_assembled,
                              double t_preconditioned, double t_solved) {
  if (auto* trace = obs::current_trace()) {
    trace->complete(rank, "assembly", "app", t_begin, t_assembled);
    trace->complete(rank, "preconditioner", "app", t_assembled,
                    t_preconditioned);
    trace->complete(rank, "solve", "app", t_preconditioned, t_solved);
  }
}

/// Rank 0 accumulates the allreduced phase maxima, so `app.phase.*_s`
/// divided by `app.steps` equals the per-iteration means an
/// ExperimentResult reports — the invariant obs_test asserts.
inline void record_phase_metrics(const IterationTiming& timing) {
  auto& metrics = detail::phase_metrics();
  metrics.steps.increment();
  metrics.assembly_s.add(timing.assembly_s);
  metrics.preconditioner_s.add(timing.preconditioner_s);
  metrics.solve_s.add(timing.solve_s);
  metrics.total_s.add(timing.total_s);
}

/// Outcome of one time step of an application.
struct StepRecord {
  double time = 0.0;  // simulated physical time reached
  IterationTiming timing;
  WorkCounts work;
  int solver_iterations = 0;
  bool solver_converged = false;
  double residual = 0.0;
  /// Discretization-error oracles (filled when error checks are enabled).
  double nodal_error = 0.0;
  double l2_error = 0.0;
  /// Per-rank step seconds (this step, rank-local clock), allgathered so
  /// every rank holds the identical vector. Only filled when the solver's
  /// `collect_rank_step_s` config is set — the load balancer's input;
  /// empty otherwise (no extra communication on the default path).
  std::vector<double> rank_step_s;
};

}  // namespace hetero::apps
