#pragma once

/// \file rd_solver.hpp
/// The paper's first test case: the 3-D reaction–diffusion equation
///
///     du/dt - (1/t^2) laplace(u) - (2/t) u = -6      on (0,1)^3
///
/// with boundary and initial data chosen so the exact solution is
/// u(x, t) = t^2 (x1^2 + x2^2 + x3^2). Discretization matches the paper:
/// BDF2 in time, quadratic (P2) finite elements in space, iterative
/// preconditioned solve each step (CG + local ILU0, the SPD analogue of the
/// paper's Trilinos stack).
///
/// Because u is quadratic in space (in the P2 space) and quadratic in time
/// (BDF2-exact), the discrete solution equals the exact interpolant up to
/// solver tolerance — the strongest correctness oracle available, used by
/// tests after every step.

#include <memory>
#include <optional>
#include <vector>

#include "apps/app_common.hpp"
#include "fem/assembler.hpp"
#include "fem/bc.hpp"
#include "fem/fe_space.hpp"
#include "la/system_builder.hpp"
#include "mesh/box_mesh.hpp"
#include "solvers/krylov.hpp"

namespace hetero::apps {

struct RdConfig {
  /// Cells per axis of the *global* cube mesh. Weak scaling uses
  /// base_cells_per_rank_axis * cbrt(ranks).
  int global_cells = 8;
  /// FE order: 2 per the paper; 1 supported for cheap runs.
  int order = 2;
  /// BDF order: 2 per the paper (exact for the t^2 solution); 1 available
  /// for the time-discretization ablation.
  int time_order = 2;
  double t0 = 1.0;
  double dt = 0.05;
  std::string preconditioner = "ilu0";
  /// Krylov method: "cg" (the system is SPD) or "bicgstab".
  std::string krylov = "cg";
  double solver_tolerance = 1e-10;
  int max_solver_iterations = 2000;
  /// Compute per-step exact-solution errors (costs extra reductions).
  bool compute_errors = true;
  /// Compute rates of the simulated platform.
  CpuCostModel cpu;
  /// Per-rank capacity weights (one per rank, mean ~1). Empty = the
  /// structured block decomposition. Non-empty switches step (i) to a
  /// capacity-weighted RCB over the global mesh: slow ranks get fewer
  /// elements. Global vertex gids keep the distributed dof map consistent
  /// for any partition, so both paths run the same solver.
  std::vector<double> rank_weights;
  /// Allgather each rank's step seconds into StepRecord::rank_step_s (the
  /// load balancer's input). Off by default: the extra collective changes
  /// modeled timings (never numerics), so it is strictly opt-in.
  bool collect_rank_step_s = false;
};

/// Exact solution and its boundary trace.
double rd_exact_solution(const mesh::Vec3& x, double t);

class RdSolver {
 public:
  /// Collective: builds the rank-local submesh, spaces, and the frozen
  /// system structure (the paper's step (i): partitioning + setup).
  RdSolver(simmpi::Comm& comm, RdConfig config);

  /// Advances one BDF2 step; collective. Returns phase timings (max over
  /// ranks) and, when enabled, exact-solution errors.
  StepRecord step();

  /// Runs `steps` steps.
  std::vector<StepRecord> run(int steps);

  /// Restart support: overwrites the two BDF history levels and the clock
  /// from checkpointed data (vectors must live on this solver's map).
  void restore_state(const la::DistVector& u_now,
                     const la::DistVector& u_prev, double time);

  const la::DistVector& previous_solution() const { return *u_prev_; }
  const la::HaloExchange& halo() const { return builder_->halo(); }

  double current_time() const { return time_; }
  int steps_taken() const { return steps_; }

  const fem::FeSpace& space() const { return *space_; }
  const la::IndexMap& map() const { return builder_->map(); }
  const la::DistVector& solution() const { return *u_now_; }
  const mesh::TetMesh& local_mesh() const { return submesh_; }
  std::int64_t global_dofs() const { return map().global_count(); }

 private:
  void assemble(double t_new);

  simmpi::Comm* comm_;
  RdConfig config_;
  mesh::BoxMeshSpec spec_;
  mesh::TetMesh submesh_;
  std::unique_ptr<fem::FeSpace> space_;
  std::unique_ptr<fem::ElementKernel> kernel_;
  std::unique_ptr<la::DistSystemBuilder> builder_;
  std::unique_ptr<solvers::Preconditioner> precond_;
  std::optional<la::DistVector> u_now_;   // u^k
  std::optional<la::DistVector> u_prev_;  // u^{k-1}
  double time_ = 0.0;
  int steps_ = 0;

  // Persistent per-step storage: solver workspace, solution buffer,
  // Dirichlet plan (fast mode; built in the constructor) and element
  // scratch, so steady-state stepping performs no per-step allocations.
  std::unique_ptr<solvers::KrylovWorkspace> workspace_;
  std::optional<la::DistVector> x_;
  std::unique_ptr<fem::DirichletPlan> dirichlet_;
  std::vector<double> me_, ke_, fe_, ae_, re_, hist_;
  std::vector<la::GlobalId> gids_;
  // The element mass/stiffness/load integrals depend only on the (static)
  // geometry; the time-dependent weak form only rescales them. Fast mode
  // caches them per tet after the first full quadrature sweep, so later
  // assemblies are a coefficient combination plus the frozen scatter.
  bool elems_cached_ = false;
  std::vector<double> elem_me_, elem_ke_, elem_fe_;
};

}  // namespace hetero::apps
