#pragma once

/// \file ns_solver.hpp
/// The paper's second test case: the incompressible Navier–Stokes equations
/// on a cube, benchmarked against the exact 3-D solution of Ethier &
/// Steinman (1994).
///
/// Discretization: BDF2 in time with second-order extrapolation of the
/// convective velocity (a linearized Oseen problem per step — the standard
/// semi-implicit scheme used by LifeV), mixed velocity/pressure elements,
/// and a monolithic GMRES + local-ILU0 solve of the coupled saddle-point
/// system. Two element pairs are available:
///
///   * velocity_order = 1 — equal-order P1/P1 with Brezzi–Pitkäranta
///     pressure stabilization (cheap; the default for the platform benches);
///   * velocity_order = 2 — Taylor–Hood P2/P1, the tetrahedral analogue of
///     the paper's Q2/Q1 pair (inf-sup stable; a small pressure-Laplacian
///     regularization keeps the local ILU0 factorizable).

#include <memory>
#include <optional>
#include <vector>

#include "apps/app_common.hpp"
#include "fem/assembler.hpp"
#include "fem/bc.hpp"
#include "fem/fe_space.hpp"
#include "la/system_builder.hpp"
#include "mesh/box_mesh.hpp"
#include "solvers/krylov.hpp"

namespace hetero::apps {

struct NsConfig {
  /// Cells per axis of the global cube mesh on [-1, 1]^3.
  int global_cells = 6;
  double density = 1.0;    // rho
  double viscosity = 1.0;  // mu (nu = mu / rho)
  double t0 = 0.0;
  double dt = 1e-3;
  /// Velocity element order: 1 (stabilized P1/P1) or 2 (Taylor-Hood P2/P1).
  int velocity_order = 1;
  /// Pressure-Laplacian coefficient: delta * h_K^2 / mu. For P1/P1 this is
  /// the Brezzi-Pitkaranta stabilization; for Taylor-Hood a much smaller
  /// value (regularization for the local ILU0) is substituted when the
  /// default is left untouched.
  double stabilization = 0.05;
  std::string preconditioner = "ilu0";
  /// Krylov method for the nonsymmetric system: "gmres" or "bicgstab".
  std::string krylov = "gmres";
  double solver_tolerance = 1e-8;
  int max_solver_iterations = 4000;
  int gmres_restart = 80;
  bool compute_errors = true;
  CpuCostModel cpu;
  /// Per-rank capacity weights (one per rank, mean ~1). Empty = the
  /// structured block decomposition; non-empty switches step (i) to a
  /// capacity-weighted RCB over the global mesh (see RdConfig).
  std::vector<double> rank_weights;
  /// Allgather each rank's step seconds into StepRecord::rank_step_s.
  /// Strictly opt-in: the extra collective changes modeled timings.
  bool collect_rank_step_s = false;
};

/// Ethier–Steinman exact velocity (component c = 0,1,2) and pressure at
/// physical time t with kinematic viscosity nu.
double es_velocity(const mesh::Vec3& x, double t, double nu, int comp);
double es_pressure(const mesh::Vec3& x, double t, double nu);

class NsSolver {
 public:
  /// Collective; builds the rank-local problem and freezes the block
  /// sparsity (3 velocity components per velocity dof + 1 pressure per
  /// pressure dof).
  NsSolver(simmpi::Comm& comm, NsConfig config);

  /// One Oseen/BDF2 step; collective.
  StepRecord step();
  std::vector<StepRecord> run(int steps);

  /// Restart support: overwrites the two BDF history levels and the clock
  /// (vectors must live on this solver's map).
  void restore_state(const la::DistVector& x_now,
                     const la::DistVector& x_prev, double time);
  const la::DistVector& state() const { return *x_now_; }
  const la::DistVector& previous_state() const { return *x_prev_; }
  const la::HaloExchange& halo() const { return builder_->halo(); }

  double current_time() const { return time_; }
  const fem::FeSpace& space() const { return *space_v_; }
  const fem::FeSpace& velocity_space() const { return *space_v_; }
  const fem::FeSpace& pressure_space() const { return *space_p_; }
  const la::IndexMap& map() const { return builder_->map(); }
  std::int64_t global_dofs() const { return map().global_count(); }

  /// Velocity component c = 0..2 at velocity-space dof `dof`, or pressure
  /// (c = 3) at pressure-space dof `dof`, from the current solution.
  double solution_at(int dof, int comp) const;

 private:
  void assemble();
  void build_dirichlet_plan();
  la::GlobalId vel_gid(int dof, int comp) const;
  la::GlobalId pres_gid(int dof) const;
  std::vector<double> velocity_values(const la::DistVector& v,
                                      int comp) const;

  simmpi::Comm* comm_;
  NsConfig config_;
  mesh::BoxMeshSpec spec_;
  mesh::TetMesh submesh_;
  std::unique_ptr<fem::FeSpace> space_v_;
  std::unique_ptr<fem::FeSpace> space_p_;
  std::unique_ptr<fem::ElementKernel> kernel_v_;
  std::unique_ptr<fem::ElementKernel> kernel_p_;
  std::unique_ptr<fem::MixedElementKernel> kernel_vp_;
  std::unique_ptr<la::DistSystemBuilder> builder_;
  std::unique_ptr<solvers::Preconditioner> precond_;
  std::optional<la::DistVector> x_now_;   // [u, p]^k
  std::optional<la::DistVector> x_prev_;  // [u, p]^{k-1}
  double stab_delta_ = 0.05;
  double time_ = 0.0;
  int steps_ = 0;

  // Persistent per-step storage (see rd_solver.hpp): solver workspace,
  // solution buffer, Dirichlet plan, tet geometries for the stabilization
  // coefficient, and element/history scratch.
  std::unique_ptr<solvers::KrylovWorkspace> workspace_;
  std::optional<la::DistVector> x_;
  std::unique_ptr<fem::DirichletPlan> dirichlet_;
  std::optional<fem::GeometryCache> geo_cache_;
  std::vector<double> me_, ke_, ce_, kp_;
  std::vector<double> de_[3];
  std::vector<la::GlobalId> vgids_, pgids_;
  std::vector<mesh::Vec3> beta_;
  std::vector<double> beta_c_;
  std::vector<double> ustar_[3], hist_[3];
};

}  // namespace hetero::apps
