#pragma once

/// \file krylov.hpp
/// Distributed Krylov solvers: CG (SPD systems — the RD application),
/// BiCGStab and restarted GMRES (nonsymmetric — the Navier–Stokes Oseen
/// systems). All global reductions go through the simulated communicator,
/// so every dot product costs an allreduce on the rank clocks, exactly the
/// latency sensitivity the paper observes at high process counts.
///
/// The iteration bodies use the fused DistVector kernels (see
/// la/dist_vector.hpp), and time-stepping callers can pass a
/// KrylovWorkspace to make repeat solves allocation-free; numerical
/// behavior is identical either way (docs/kernels.md has the argument).

#include <memory>
#include <string>
#include <vector>

#include "la/dist_matrix.hpp"
#include "solvers/preconditioner.hpp"

namespace hetero::solvers {

/// Reusable solver vector storage bound to one IndexMap. Vectors are
/// created on first use and keep their allocation across solves; acquire()
/// re-zeroes them, so a solver sees exactly the state a freshly
/// constructed DistVector would give.
class KrylovWorkspace {
 public:
  explicit KrylovWorkspace(const la::IndexMap& map) : map_(&map) {}

  /// Zeroed vector for `slot` (grown on demand).
  la::DistVector& acquire(std::size_t slot);

  const la::IndexMap& map() const { return *map_; }

  /// Number of vectors materialized so far (tests/bench introspection).
  std::size_t vector_count() const { return vecs_.size(); }

 private:
  const la::IndexMap* map_;
  std::vector<std::unique_ptr<la::DistVector>> vecs_;
};

struct SolverConfig {
  double rel_tolerance = 1e-8;
  int max_iterations = 1000;
  /// GMRES restart length.
  int restart = 50;
  /// Record the residual norm after every iteration (convergence studies).
  bool record_history = false;
};

struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  std::string solver;
  /// Residual norms per iteration (empty unless record_history was set).
  std::vector<double> residual_history;
};

/// Preconditioned conjugate gradient; requires an SPD operator.
SolveReport cg_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                     const Preconditioner& m, const la::DistVector& b,
                     la::DistVector& x, const SolverConfig& config);
SolveReport cg_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                     const Preconditioner& m, const la::DistVector& b,
                     la::DistVector& x, const SolverConfig& config,
                     KrylovWorkspace& ws);

/// Preconditioned BiCGStab.
SolveReport bicgstab_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                           const Preconditioner& m, const la::DistVector& b,
                           la::DistVector& x, const SolverConfig& config);
SolveReport bicgstab_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                           const Preconditioner& m, const la::DistVector& b,
                           la::DistVector& x, const SolverConfig& config,
                           KrylovWorkspace& ws);

/// Restarted GMRES with left preconditioning.
SolveReport gmres_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                        const Preconditioner& m, const la::DistVector& b,
                        la::DistVector& x, const SolverConfig& config);
SolveReport gmres_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                        const Preconditioner& m, const la::DistVector& b,
                        la::DistVector& x, const SolverConfig& config,
                        KrylovWorkspace& ws);

}  // namespace hetero::solvers
