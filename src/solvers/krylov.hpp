#pragma once

/// \file krylov.hpp
/// Distributed Krylov solvers: CG (SPD systems — the RD application),
/// BiCGStab and restarted GMRES (nonsymmetric — the Navier–Stokes Oseen
/// systems). All global reductions go through the simulated communicator,
/// so every dot product costs an allreduce on the rank clocks, exactly the
/// latency sensitivity the paper observes at high process counts.

#include <string>

#include "la/dist_matrix.hpp"
#include "solvers/preconditioner.hpp"

namespace hetero::solvers {

struct SolverConfig {
  double rel_tolerance = 1e-8;
  int max_iterations = 1000;
  /// GMRES restart length.
  int restart = 50;
  /// Record the residual norm after every iteration (convergence studies).
  bool record_history = false;
};

struct SolveReport {
  bool converged = false;
  int iterations = 0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  std::string solver;
  /// Residual norms per iteration (empty unless record_history was set).
  std::vector<double> residual_history;
};

/// Preconditioned conjugate gradient; requires an SPD operator.
SolveReport cg_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                     const Preconditioner& m, const la::DistVector& b,
                     la::DistVector& x, const SolverConfig& config);

/// Preconditioned BiCGStab.
SolveReport bicgstab_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                           const Preconditioner& m, const la::DistVector& b,
                           la::DistVector& x, const SolverConfig& config);

/// Restarted GMRES with left preconditioning.
SolveReport gmres_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                        const Preconditioner& m, const la::DistVector& b,
                        la::DistVector& x, const SolverConfig& config);

}  // namespace hetero::solvers
