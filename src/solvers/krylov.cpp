#include "solvers/krylov.hpp"

#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hetero::solvers {

namespace {
/// Convergence threshold from the initial residual; guards b == 0.
double threshold(double r0, const SolverConfig& config) {
  return config.rel_tolerance * (r0 > 0.0 ? r0 : 1.0);
}

struct SolverMetrics {
  obs::Counter& solves = obs::metrics().counter("solvers.solves");
  obs::Counter& iterations = obs::metrics().counter("solvers.iterations");
};

SolverMetrics& solver_metrics() {
  static SolverMetrics metrics;
  return metrics;
}

/// Shared epilogue: metric totals plus the span's iteration-count argument.
template <class Span>
void finish_solve(Span& span, const SolveReport& report) {
  span.set_arg("iterations", static_cast<double>(report.iterations));
  auto& metrics = solver_metrics();
  metrics.solves.increment();
  metrics.iterations.add(static_cast<double>(report.iterations));
}
}  // namespace

SolveReport cg_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                     const Preconditioner& m, const la::DistVector& b,
                     la::DistVector& x, const SolverConfig& config) {
  SolveReport report;
  report.solver = "cg";
  obs::ScopedSpan span(comm, "cg_solve", "solver");
  la::DistVector r(a.map());
  la::DistVector z(a.map());
  la::DistVector p(a.map());
  la::DistVector ap(a.map());

  // r = b - A x
  a.multiply(comm, x, r);
  r.axpby(1.0, b, -1.0);
  report.initial_residual = r.norm2(comm);
  const double eps = threshold(report.initial_residual, config);

  m.apply(r, z);
  p.copy_from(z);
  double rz = r.dot(comm, z);
  double rnorm = report.initial_residual;

  while (report.iterations < config.max_iterations && rnorm > eps) {
    a.multiply(comm, p, ap);
    const double pap = p.dot(comm, ap);
    HETERO_REQUIRE(pap != 0.0, "CG breakdown: p'Ap == 0");
    const double alpha = rz / pap;
    x.axpy(alpha, p);
    r.axpy(-alpha, ap);
    rnorm = r.norm2(comm);
    ++report.iterations;
    obs::trace_instant("iteration", "solver", comm.now(), "residual", rnorm);
    if (config.record_history) {
      report.residual_history.push_back(rnorm);
    }
    if (rnorm <= eps) {
      break;
    }
    m.apply(r, z);
    const double rz_next = r.dot(comm, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    p.axpby(1.0, z, beta);
  }
  report.final_residual = rnorm;
  report.converged = rnorm <= eps;
  finish_solve(span, report);
  return report;
}

SolveReport bicgstab_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                           const Preconditioner& m, const la::DistVector& b,
                           la::DistVector& x, const SolverConfig& config) {
  SolveReport report;
  report.solver = "bicgstab";
  obs::ScopedSpan span(comm, "bicgstab_solve", "solver");
  la::DistVector r(a.map());
  la::DistVector r0(a.map());
  la::DistVector p(a.map());
  la::DistVector v(a.map());
  la::DistVector s(a.map());
  la::DistVector t(a.map());
  la::DistVector phat(a.map());
  la::DistVector shat(a.map());

  a.multiply(comm, x, r);
  r.axpby(1.0, b, -1.0);
  r0.copy_from(r);
  report.initial_residual = r.norm2(comm);
  const double eps = threshold(report.initial_residual, config);

  double rho_prev = 1.0;
  double alpha = 1.0;
  double omega = 1.0;
  double rnorm = report.initial_residual;

  while (report.iterations < config.max_iterations && rnorm > eps) {
    const double rho = r0.dot(comm, r);
    if (rho == 0.0) {
      break;  // breakdown
    }
    if (report.iterations == 0) {
      p.copy_from(r);
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      // p = r + beta (p - omega v)
      p.axpy(-omega, v);
      p.axpby(1.0, r, beta);
    }
    m.apply(p, phat);
    a.multiply(comm, phat, v);
    const double r0v = r0.dot(comm, v);
    if (r0v == 0.0) {
      break;
    }
    alpha = rho / r0v;
    s.copy_from(r);
    s.axpy(-alpha, v);
    const double snorm = s.norm2(comm);
    if (snorm <= eps) {
      x.axpy(alpha, phat);
      rnorm = snorm;
      ++report.iterations;
      obs::trace_instant("iteration", "solver", comm.now(), "residual",
                         rnorm);
      if (config.record_history) {
        report.residual_history.push_back(rnorm);
      }
      break;
    }
    m.apply(s, shat);
    a.multiply(comm, shat, t);
    const double tt = t.dot(comm, t);
    if (tt == 0.0) {
      break;
    }
    omega = t.dot(comm, s) / tt;
    x.axpy(alpha, phat);
    x.axpy(omega, shat);
    r.copy_from(s);
    r.axpy(-omega, t);
    rho_prev = rho;
    rnorm = r.norm2(comm);
    ++report.iterations;
    obs::trace_instant("iteration", "solver", comm.now(), "residual", rnorm);
    if (config.record_history) {
      report.residual_history.push_back(rnorm);
    }
    if (omega == 0.0) {
      break;
    }
  }
  report.final_residual = rnorm;
  report.converged = rnorm <= eps;
  finish_solve(span, report);
  return report;
}

SolveReport gmres_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                        const Preconditioner& m, const la::DistVector& b,
                        la::DistVector& x, const SolverConfig& config) {
  SolveReport report;
  report.solver = "gmres";
  obs::ScopedSpan span(comm, "gmres_solve", "solver");
  const int restart = config.restart;
  HETERO_REQUIRE(restart >= 1, "GMRES restart must be >= 1");

  la::DistVector r(a.map());
  la::DistVector w(a.map());
  la::DistVector z(a.map());

  // Left preconditioning: iterate on M^{-1} A x = M^{-1} b; residual norms
  // below are preconditioned norms, which is also what Trilinos AztecOO
  // reports by default.
  a.multiply(comm, x, r);
  r.axpby(1.0, b, -1.0);
  m.apply(r, z);
  report.initial_residual = z.norm2(comm);
  const double eps = threshold(report.initial_residual, config);
  double beta = report.initial_residual;

  std::vector<la::DistVector> basis;  // Krylov basis V
  std::vector<std::vector<double>> h(
      static_cast<std::size_t>(restart) + 1,
      std::vector<double>(static_cast<std::size_t>(restart), 0.0));
  std::vector<double> cs(static_cast<std::size_t>(restart), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(restart), 0.0);
  std::vector<double> g(static_cast<std::size_t>(restart) + 1, 0.0);

  while (report.iterations < config.max_iterations && beta > eps) {
    // (Re)start: r = M^{-1}(b - A x), v1 = r / |r|.
    a.multiply(comm, x, r);
    r.axpby(1.0, b, -1.0);
    m.apply(r, z);
    beta = z.norm2(comm);
    if (beta <= eps) {
      break;
    }
    basis.clear();
    basis.emplace_back(a.map());
    basis.back().copy_from(z);
    basis.back().scale(1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < restart && report.iterations < config.max_iterations; ++k) {
      // w = M^{-1} A v_k
      a.multiply(comm, basis[static_cast<std::size_t>(k)], w);
      m.apply(w, z);
      // Modified Gram-Schmidt.
      for (int i = 0; i <= k; ++i) {
        const double hik = z.dot(comm, basis[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = hik;
        z.axpy(-hik, basis[static_cast<std::size_t>(i)]);
      }
      const double hkk = z.norm2(comm);
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = hkk;
      ++report.iterations;
      if (hkk != 0.0) {
        basis.emplace_back(a.map());
        basis.back().copy_from(z);
        basis.back().scale(1.0 / hkk);
      }
      // Apply accumulated Givens rotations to the new column.
      for (int i = 0; i < k; ++i) {
        const double t1 = h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
        const double t2 =
            h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)];
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
            cs[static_cast<std::size_t>(i)] * t1 + sn[static_cast<std::size_t>(i)] * t2;
        h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)] =
            -sn[static_cast<std::size_t>(i)] * t1 + cs[static_cast<std::size_t>(i)] * t2;
      }
      // New rotation to zero h(k+1, k).
      const double t1 = h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)];
      const double t2 = h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)];
      const double denom = std::hypot(t1, t2);
      HETERO_REQUIRE(denom > 0.0, "GMRES breakdown: zero Hessenberg column");
      cs[static_cast<std::size_t>(k)] = t1 / denom;
      sn[static_cast<std::size_t>(k)] = t2 / denom;
      h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)] = denom;
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = 0.0;
      const double gk = g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = cs[static_cast<std::size_t>(k)] * gk;
      g[static_cast<std::size_t>(k) + 1] = -sn[static_cast<std::size_t>(k)] * gk;
      beta = std::fabs(g[static_cast<std::size_t>(k) + 1]);
      obs::trace_instant("iteration", "solver", comm.now(), "residual", beta);
      if (config.record_history) {
        report.residual_history.push_back(beta);
      }
      if (beta <= eps || hkk == 0.0) {
        ++k;
        break;
      }
    }
    // Solve the k×k triangular system and update x.
    std::vector<double> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        acc -= h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
               y[static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(i)] =
          acc / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < k; ++i) {
      x.axpy(y[static_cast<std::size_t>(i)],
             basis[static_cast<std::size_t>(i)]);
    }
  }
  report.final_residual = beta;
  report.converged = beta <= eps;
  finish_solve(span, report);
  return report;
}

}  // namespace hetero::solvers
