#include "solvers/krylov.hpp"

#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace hetero::solvers {

namespace {
/// Convergence threshold from the initial residual; guards b == 0.
double threshold(double r0, const SolverConfig& config) {
  return config.rel_tolerance * (r0 > 0.0 ? r0 : 1.0);
}

struct SolverMetrics {
  obs::Counter& solves = obs::metrics().counter("solvers.solves");
  obs::Counter& iterations = obs::metrics().counter("solvers.iterations");
};

SolverMetrics& solver_metrics() {
  static SolverMetrics metrics;
  return metrics;
}

/// Shared epilogue: metric totals plus the span's iteration-count argument.
template <class Span>
void finish_solve(Span& span, const SolveReport& report) {
  span.set_arg("iterations", static_cast<double>(report.iterations));
  auto& metrics = solver_metrics();
  metrics.solves.increment();
  metrics.iterations.add(static_cast<double>(report.iterations));
}
}  // namespace

la::DistVector& KrylovWorkspace::acquire(std::size_t slot) {
  if (slot >= vecs_.size()) {
    vecs_.resize(slot + 1);
  }
  if (!vecs_[slot]) {
    vecs_[slot] = std::make_unique<la::DistVector>(*map_);
  } else {
    vecs_[slot]->set_all(0.0);
  }
  return *vecs_[slot];
}

SolveReport cg_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                     const Preconditioner& m, const la::DistVector& b,
                     la::DistVector& x, const SolverConfig& config) {
  KrylovWorkspace ws(a.map());
  return cg_solve(comm, a, m, b, x, config, ws);
}

SolveReport cg_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                     const Preconditioner& m, const la::DistVector& b,
                     la::DistVector& x, const SolverConfig& config,
                     KrylovWorkspace& ws) {
  SolveReport report;
  report.solver = "cg";
  obs::ScopedSpan span(comm, "cg_solve", "solver");
  la::DistVector& r = ws.acquire(0);
  la::DistVector& z = ws.acquire(1);
  la::DistVector& p = ws.acquire(2);
  la::DistVector& ap = ws.acquire(3);

  // r = b - A x
  a.multiply(comm, x, r);
  r.axpby(1.0, b, -1.0);
  report.initial_residual = r.norm2(comm);
  const double eps = threshold(report.initial_residual, config);

  m.apply(r, z);
  p.copy_from(z);
  double rz = r.dot(comm, z);
  double rnorm = report.initial_residual;

  while (report.iterations < config.max_iterations && rnorm > eps) {
    a.multiply(comm, p, ap);
    const double pap = p.dot(comm, ap);
    HETERO_REQUIRE(pap != 0.0, "CG breakdown: p'Ap == 0");
    const double alpha = rz / pap;
    // x += alpha p; r -= alpha ap; rnorm = |r| in one fused sweep.
    rnorm = la::cg_update_norm2(comm, x, alpha, p, r, ap);
    ++report.iterations;
    obs::trace_instant("iteration", "solver", comm.now(), "residual", rnorm);
    if (config.record_history) {
      report.residual_history.push_back(rnorm);
    }
    if (rnorm <= eps) {
      break;
    }
    m.apply(r, z);
    const double rz_next = r.dot(comm, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    p.axpby(1.0, z, beta);
  }
  report.final_residual = rnorm;
  report.converged = rnorm <= eps;
  finish_solve(span, report);
  return report;
}

SolveReport bicgstab_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                           const Preconditioner& m, const la::DistVector& b,
                           la::DistVector& x, const SolverConfig& config) {
  KrylovWorkspace ws(a.map());
  return bicgstab_solve(comm, a, m, b, x, config, ws);
}

SolveReport bicgstab_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                           const Preconditioner& m, const la::DistVector& b,
                           la::DistVector& x, const SolverConfig& config,
                           KrylovWorkspace& ws) {
  SolveReport report;
  report.solver = "bicgstab";
  obs::ScopedSpan span(comm, "bicgstab_solve", "solver");
  la::DistVector& r = ws.acquire(0);
  la::DistVector& r0 = ws.acquire(1);
  la::DistVector& p = ws.acquire(2);
  la::DistVector& v = ws.acquire(3);
  la::DistVector& s = ws.acquire(4);
  la::DistVector& t = ws.acquire(5);
  la::DistVector& phat = ws.acquire(6);
  la::DistVector& shat = ws.acquire(7);

  a.multiply(comm, x, r);
  r.axpby(1.0, b, -1.0);
  r0.copy_from(r);
  report.initial_residual = r.norm2(comm);
  const double eps = threshold(report.initial_residual, config);

  double rho_prev = 1.0;
  double alpha = 1.0;
  double omega = 1.0;
  double rnorm = report.initial_residual;

  while (report.iterations < config.max_iterations && rnorm > eps) {
    const double rho = r0.dot(comm, r);
    if (rho == 0.0) {
      break;  // breakdown
    }
    if (report.iterations == 0) {
      p.copy_from(r);
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      // p = r + beta (p - omega v), fused.
      p.update_search_direction(r, v, beta, omega);
    }
    m.apply(p, phat);
    a.multiply(comm, phat, v);
    const double r0v = r0.dot(comm, v);
    if (r0v == 0.0) {
      break;
    }
    alpha = rho / r0v;
    // s = r - alpha v with the norm folded into the same sweep.
    const double snorm = s.copy_axpy_norm2(comm, r, -alpha, v);
    if (snorm <= eps) {
      x.axpy(alpha, phat);
      rnorm = snorm;
      ++report.iterations;
      obs::trace_instant("iteration", "solver", comm.now(), "residual",
                         rnorm);
      if (config.record_history) {
        report.residual_history.push_back(rnorm);
      }
      break;
    }
    m.apply(s, shat);
    a.multiply(comm, shat, t);
    // (t.t, t.s) in one reduction.
    const auto [tt, ts] = t.dot_pair(comm, t, s);
    if (tt == 0.0) {
      break;
    }
    omega = ts / tt;
    // x += alpha phat + omega shat (entry order matches the two axpys).
    const double coeffs[2] = {alpha, omega};
    const la::DistVector* dirs[2] = {&phat, &shat};
    x.add_scaled(coeffs, dirs);
    rnorm = r.copy_axpy_norm2(comm, s, -omega, t);
    rho_prev = rho;
    ++report.iterations;
    obs::trace_instant("iteration", "solver", comm.now(), "residual", rnorm);
    if (config.record_history) {
      report.residual_history.push_back(rnorm);
    }
    if (omega == 0.0) {
      break;
    }
  }
  report.final_residual = rnorm;
  report.converged = rnorm <= eps;
  finish_solve(span, report);
  return report;
}

SolveReport gmres_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                        const Preconditioner& m, const la::DistVector& b,
                        la::DistVector& x, const SolverConfig& config) {
  KrylovWorkspace ws(a.map());
  return gmres_solve(comm, a, m, b, x, config, ws);
}

SolveReport gmres_solve(simmpi::Comm& comm, const la::DistCsrMatrix& a,
                        const Preconditioner& m, const la::DistVector& b,
                        la::DistVector& x, const SolverConfig& config,
                        KrylovWorkspace& ws) {
  SolveReport report;
  report.solver = "gmres";
  obs::ScopedSpan span(comm, "gmres_solve", "solver");
  const int restart = config.restart;
  HETERO_REQUIRE(restart >= 1, "GMRES restart must be >= 1");

  la::DistVector& r = ws.acquire(0);
  la::DistVector& w = ws.acquire(1);
  la::DistVector& z = ws.acquire(2);

  // Left preconditioning: iterate on M^{-1} A x = M^{-1} b; residual norms
  // below are preconditioned norms, which is also what Trilinos AztecOO
  // reports by default.
  a.multiply(comm, x, r);
  r.axpby(1.0, b, -1.0);
  m.apply(r, z);
  report.initial_residual = z.norm2(comm);
  const double eps = threshold(report.initial_residual, config);
  double beta = report.initial_residual;

  // Krylov basis V: workspace slots 3.., grown per inner step and reused
  // across restarts and solves.
  std::vector<la::DistVector*> basis;
  std::vector<std::vector<double>> h(
      static_cast<std::size_t>(restart) + 1,
      std::vector<double>(static_cast<std::size_t>(restart), 0.0));
  std::vector<double> cs(static_cast<std::size_t>(restart), 0.0);
  std::vector<double> sn(static_cast<std::size_t>(restart), 0.0);
  std::vector<double> g(static_cast<std::size_t>(restart) + 1, 0.0);

  while (report.iterations < config.max_iterations && beta > eps) {
    // (Re)start: r = M^{-1}(b - A x), v1 = r / |r|.
    a.multiply(comm, x, r);
    r.axpby(1.0, b, -1.0);
    m.apply(r, z);
    beta = z.norm2(comm);
    if (beta <= eps) {
      break;
    }
    basis.clear();
    basis.push_back(&ws.acquire(3));
    basis.back()->copy_from(z);
    basis.back()->scale(1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < restart && report.iterations < config.max_iterations; ++k) {
      // w = M^{-1} A v_k
      a.multiply(comm, *basis[static_cast<std::size_t>(k)], w);
      m.apply(w, z);
      // Modified Gram-Schmidt.
      for (int i = 0; i <= k; ++i) {
        const double hik = z.dot(comm, *basis[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = hik;
        z.axpy(-hik, *basis[static_cast<std::size_t>(i)]);
      }
      const double hkk = z.norm2(comm);
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = hkk;
      ++report.iterations;
      if (hkk != 0.0) {
        basis.push_back(&ws.acquire(4 + static_cast<std::size_t>(k)));
        basis.back()->copy_from(z);
        basis.back()->scale(1.0 / hkk);
      }
      // Apply accumulated Givens rotations to the new column.
      for (int i = 0; i < k; ++i) {
        const double t1 = h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
        const double t2 =
            h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)];
        h[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
            cs[static_cast<std::size_t>(i)] * t1 + sn[static_cast<std::size_t>(i)] * t2;
        h[static_cast<std::size_t>(i) + 1][static_cast<std::size_t>(k)] =
            -sn[static_cast<std::size_t>(i)] * t1 + cs[static_cast<std::size_t>(i)] * t2;
      }
      // New rotation to zero h(k+1, k).
      const double t1 = h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)];
      const double t2 = h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)];
      const double denom = std::hypot(t1, t2);
      HETERO_REQUIRE(denom > 0.0, "GMRES breakdown: zero Hessenberg column");
      cs[static_cast<std::size_t>(k)] = t1 / denom;
      sn[static_cast<std::size_t>(k)] = t2 / denom;
      h[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)] = denom;
      h[static_cast<std::size_t>(k) + 1][static_cast<std::size_t>(k)] = 0.0;
      const double gk = g[static_cast<std::size_t>(k)];
      g[static_cast<std::size_t>(k)] = cs[static_cast<std::size_t>(k)] * gk;
      g[static_cast<std::size_t>(k) + 1] = -sn[static_cast<std::size_t>(k)] * gk;
      beta = std::fabs(g[static_cast<std::size_t>(k) + 1]);
      obs::trace_instant("iteration", "solver", comm.now(), "residual", beta);
      if (config.record_history) {
        report.residual_history.push_back(beta);
      }
      if (beta <= eps || hkk == 0.0) {
        ++k;
        break;
      }
    }
    // Solve the k×k triangular system and update x.
    std::vector<double> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        acc -= h[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] *
               y[static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(i)] =
          acc / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    // x += sum_i y_i v_i; the fused multi-vector update keeps the same
    // per-entry accumulation order as the axpy sequence.
    x.add_scaled(
        std::span<const double>(y.data(), static_cast<std::size_t>(k)),
        std::span<const la::DistVector* const>(basis.data(),
                                               static_cast<std::size_t>(k)));
  }
  report.final_residual = beta;
  report.converged = beta <= eps;
  finish_solve(span, report);
  return report;
}

}  // namespace hetero::solvers
