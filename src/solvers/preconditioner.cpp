#include "solvers/preconditioner.hpp"

#include <algorithm>
#include <cmath>

#include "la/kernels.hpp"
#include "support/error.hpp"

namespace hetero::solvers {

void IdentityPreconditioner::build(const la::DistCsrMatrix& matrix) {
  rows_ = matrix.local().rows();
}

void IdentityPreconditioner::apply(const la::DistVector& r,
                                   la::DistVector& z) const {
  HETERO_REQUIRE(r.owned_count() == rows_ && z.owned_count() == rows_,
                 "identity preconditioner size mismatch");
  std::copy_n(r.values().data(), rows_, z.values().data());
}

void JacobiPreconditioner::build(const la::DistCsrMatrix& matrix) {
  inv_diag_ = matrix.local().diagonal();
  for (double& d : inv_diag_) {
    HETERO_REQUIRE(d != 0.0, "Jacobi preconditioner hit a zero diagonal");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const la::DistVector& r,
                                 la::DistVector& z) const {
  HETERO_REQUIRE(static_cast<std::size_t>(r.owned_count()) ==
                     inv_diag_.size(),
                 "Jacobi preconditioner size mismatch");
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) {
    z[static_cast<int>(i)] = inv_diag_[i] * r[static_cast<int>(i)];
  }
}

SsorPreconditioner::SsorPreconditioner(double omega) : omega_(omega) {
  HETERO_REQUIRE(omega > 0.0 && omega < 2.0,
                 "SSOR requires omega in (0, 2)");
}

void SsorPreconditioner::build(const la::DistCsrMatrix& matrix) {
  const la::CsrMatrix& a = matrix.local();
  const auto av = a.values();
  // Same pattern object as last time -> values-only refresh (fast mode).
  if (la::kernel_mode() == la::KernelMode::kFast &&
      src_pattern_ == a.row_ptr().data() && a.rows() == n_) {
    for (std::size_t j = 0; j < src_slot_.size(); ++j) {
      values_[j] = av[static_cast<std::size_t>(src_slot_[j])];
    }
    for (int i = 0; i < n_; ++i) {
      diag_[static_cast<std::size_t>(i)] =
          av[static_cast<std::size_t>(diag_src_slot_[static_cast<std::size_t>(i)])];
      HETERO_REQUIRE(diag_[static_cast<std::size_t>(i)] != 0.0,
                     "SSOR hit a zero diagonal");
    }
    return;
  }
  n_ = a.rows();
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  col_idx_.clear();
  values_.clear();
  src_slot_.clear();
  diag_src_slot_.assign(static_cast<std::size_t>(n_), -1);
  diag_.assign(static_cast<std::size_t>(n_), 0.0);
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  for (int i = 0; i < n_; ++i) {
    for (auto k = arp[static_cast<std::size_t>(i)];
         k < arp[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = aci[static_cast<std::size_t>(k)];
      if (c < n_) {
        col_idx_.push_back(c);
        values_.push_back(av[static_cast<std::size_t>(k)]);
        src_slot_.push_back(k);
        if (c == i) {
          diag_[static_cast<std::size_t>(i)] = av[static_cast<std::size_t>(k)];
          diag_src_slot_[static_cast<std::size_t>(i)] = k;
        }
      }
    }
    row_ptr_[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(col_idx_.size());
    HETERO_REQUIRE(diag_[static_cast<std::size_t>(i)] != 0.0,
                   "SSOR hit a zero diagonal");
  }
  src_pattern_ = arp.data();
}

void SsorPreconditioner::apply(const la::DistVector& r,
                               la::DistVector& z) const {
  HETERO_REQUIRE(r.owned_count() == n_ && z.owned_count() == n_,
                 "SSOR preconditioner size mismatch");
  const double w = omega_;
  // Forward sweep: (D/w + L) y = r.
  for (int i = 0; i < n_; ++i) {
    double acc = r[i];
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (c < i) {
        acc -= values_[static_cast<std::size_t>(k)] * z[c];
      }
    }
    z[i] = acc * w / diag_[static_cast<std::size_t>(i)];
  }
  // Scale by D/w x (2-w)/w  ->  z = ((2-w)/w) D z ... combined below.
  for (int i = 0; i < n_; ++i) {
    z[i] *= (2.0 - w) / w * diag_[static_cast<std::size_t>(i)];
  }
  // Backward sweep: (D/w + U) z = y~.
  for (int i = n_ - 1; i >= 0; --i) {
    double acc = z[i];
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (c > i) {
        acc -= values_[static_cast<std::size_t>(k)] * z[c];
      }
    }
    z[i] = acc * w / diag_[static_cast<std::size_t>(i)];
  }
}

void Ilu0Preconditioner::build(const la::DistCsrMatrix& matrix) {
  const la::CsrMatrix& a = matrix.local();
  const auto av = a.values();
  // Same pattern object as last time -> gather fresh values through the
  // recorded slots and refactorize; skips the block re-extraction and all
  // per-build allocations (fast mode only).
  if (la::kernel_mode() == la::KernelMode::kFast &&
      src_pattern_ == a.row_ptr().data() && a.rows() == n_) {
    for (std::size_t j = 0; j < src_slot_.size(); ++j) {
      values_[j] = av[static_cast<std::size_t>(src_slot_[j])];
    }
    factorize();
    return;
  }

  // Extract the owned square block (drop ghost columns).
  n_ = a.rows();
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  col_idx_.clear();
  values_.clear();
  src_slot_.clear();
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  for (int i = 0; i < n_; ++i) {
    for (auto k = arp[static_cast<std::size_t>(i)];
         k < arp[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = aci[static_cast<std::size_t>(k)];
      if (c < n_) {
        col_idx_.push_back(c);
        values_.push_back(av[static_cast<std::size_t>(k)]);
        src_slot_.push_back(k);
      }
    }
    row_ptr_[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(col_idx_.size());
  }

  // Diagonal slots (must exist for a factorizable block).
  diag_slot_.assign(static_cast<std::size_t>(n_), -1);
  for (int i = 0; i < n_; ++i) {
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      if (col_idx_[static_cast<std::size_t>(k)] == i) {
        diag_slot_[static_cast<std::size_t>(i)] = k;
        break;
      }
    }
    HETERO_REQUIRE(diag_slot_[static_cast<std::size_t>(i)] >= 0,
                   "ILU(0): local block is missing a diagonal entry");
  }

  where_.assign(static_cast<std::size_t>(n_), -1);
  src_pattern_ = arp.data();
  sched_built_ = false;  // new pattern invalidates any recorded schedule
  factorize();
}

void Ilu0Preconditioner::factorize() {
  if (la::kernel_mode() != la::KernelMode::kFast) {
    factorize_ikj(/*record=*/false);
    return;
  }
  if (!sched_built_) {
    pivot_slot_.clear();
    pivot_diag_.clear();
    pivot_ptr_.assign(1, 0);
    upd_dst_.clear();
    upd_src_.clear();
    factorize_ikj(/*record=*/true);
    sched_built_ = true;
    return;
  }
  // Replay: the same divisions and updates, in the same order, as the IKJ
  // loop — just without the column scatter/reset and the stored-position
  // branch per candidate update.
  const std::size_t pivots = pivot_slot_.size();
  for (std::size_t p = 0; p < pivots; ++p) {
    const double ukk = values_[static_cast<std::size_t>(pivot_diag_[p])];
    HETERO_REQUIRE(std::fabs(ukk) > 1e-300, "ILU(0) hit a zero pivot");
    const double lik =
        values_[static_cast<std::size_t>(pivot_slot_[p])] / ukk;
    values_[static_cast<std::size_t>(pivot_slot_[p])] = lik;
    const auto begin = static_cast<std::size_t>(pivot_ptr_[p]);
    const auto end = static_cast<std::size_t>(pivot_ptr_[p + 1]);
    for (std::size_t j = begin; j < end; ++j) {
      values_[static_cast<std::size_t>(upd_dst_[j])] -=
          lik * values_[static_cast<std::size_t>(upd_src_[j])];
    }
  }
}

void Ilu0Preconditioner::factorize_ikj(bool record) {
  // In-place IKJ ILU(0). `where_[c]` maps a column to its slot in row i;
  // every row resets its entries to -1 before moving on, so the scratch
  // can persist across builds.
  for (int i = 0; i < n_; ++i) {
    const auto begin = row_ptr_[static_cast<std::size_t>(i)];
    const auto end = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (auto k = begin; k < end; ++k) {
      where_[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] =
          k;
    }
    for (auto k = begin; k < end; ++k) {
      const int kc = col_idx_[static_cast<std::size_t>(k)];
      if (kc >= i) {
        break;  // columns are sorted; lower part done
      }
      const double ukk =
          values_[static_cast<std::size_t>(diag_slot_[static_cast<std::size_t>(kc)])];
      HETERO_REQUIRE(std::fabs(ukk) > 1e-300, "ILU(0) hit a zero pivot");
      const double lik = values_[static_cast<std::size_t>(k)] / ukk;
      values_[static_cast<std::size_t>(k)] = lik;
      if (record) {
        pivot_slot_.push_back(static_cast<std::int32_t>(k));
        pivot_diag_.push_back(static_cast<std::int32_t>(
            diag_slot_[static_cast<std::size_t>(kc)]));
      }
      // Row update: a_i* -= l_ik * u_k* for stored positions only.
      for (auto kk = diag_slot_[static_cast<std::size_t>(kc)] + 1;
           kk < row_ptr_[static_cast<std::size_t>(kc) + 1]; ++kk) {
        const int c = col_idx_[static_cast<std::size_t>(kk)];
        const auto slot = where_[static_cast<std::size_t>(c)];
        if (slot >= 0) {
          values_[static_cast<std::size_t>(slot)] -=
              lik * values_[static_cast<std::size_t>(kk)];
          if (record) {
            upd_dst_.push_back(static_cast<std::int32_t>(slot));
            upd_src_.push_back(static_cast<std::int32_t>(kk));
          }
        }
      }
      if (record) {
        pivot_ptr_.push_back(static_cast<std::int64_t>(upd_dst_.size()));
      }
    }
    for (auto k = begin; k < end; ++k) {
      where_[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] =
          -1;
    }
  }
}

void Ilu0Preconditioner::apply(const la::DistVector& r,
                               la::DistVector& z) const {
  HETERO_REQUIRE(r.owned_count() == n_ && z.owned_count() == n_,
                 "ILU(0) preconditioner size mismatch");
  // Forward solve L y = r (unit diagonal).
  for (int i = 0; i < n_; ++i) {
    double acc = r[i];
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (c >= i) {
        break;
      }
      acc -= values_[static_cast<std::size_t>(k)] * z[c];
    }
    z[i] = acc;
  }
  // Backward solve U z = y.
  for (int i = n_ - 1; i >= 0; --i) {
    double acc = z[i];
    const auto dslot = diag_slot_[static_cast<std::size_t>(i)];
    for (auto k = dslot + 1; k < row_ptr_[static_cast<std::size_t>(i) + 1];
         ++k) {
      acc -= values_[static_cast<std::size_t>(k)] *
             z[col_idx_[static_cast<std::size_t>(k)]];
    }
    z[i] = acc / values_[static_cast<std::size_t>(dslot)];
  }
}

std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name) {
  if (name == "identity") {
    return std::make_unique<IdentityPreconditioner>();
  }
  if (name == "jacobi") {
    return std::make_unique<JacobiPreconditioner>();
  }
  if (name == "ssor") {
    return std::make_unique<SsorPreconditioner>();
  }
  if (name == "ilu0") {
    return std::make_unique<Ilu0Preconditioner>();
  }
  throw Error("unknown preconditioner: " + name);
}

}  // namespace hetero::solvers
