#include "solvers/preconditioner.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace hetero::solvers {

void IdentityPreconditioner::build(const la::DistCsrMatrix& matrix) {
  rows_ = matrix.local().rows();
}

void IdentityPreconditioner::apply(const la::DistVector& r,
                                   la::DistVector& z) const {
  HETERO_REQUIRE(r.owned_count() == rows_ && z.owned_count() == rows_,
                 "identity preconditioner size mismatch");
  std::copy_n(r.values().data(), rows_, z.values().data());
}

void JacobiPreconditioner::build(const la::DistCsrMatrix& matrix) {
  inv_diag_ = matrix.local().diagonal();
  for (double& d : inv_diag_) {
    HETERO_REQUIRE(d != 0.0, "Jacobi preconditioner hit a zero diagonal");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const la::DistVector& r,
                                 la::DistVector& z) const {
  HETERO_REQUIRE(static_cast<std::size_t>(r.owned_count()) ==
                     inv_diag_.size(),
                 "Jacobi preconditioner size mismatch");
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) {
    z[static_cast<int>(i)] = inv_diag_[i] * r[static_cast<int>(i)];
  }
}

SsorPreconditioner::SsorPreconditioner(double omega) : omega_(omega) {
  HETERO_REQUIRE(omega > 0.0 && omega < 2.0,
                 "SSOR requires omega in (0, 2)");
}

void SsorPreconditioner::build(const la::DistCsrMatrix& matrix) {
  const la::CsrMatrix& a = matrix.local();
  n_ = a.rows();
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  col_idx_.clear();
  values_.clear();
  diag_.assign(static_cast<std::size_t>(n_), 0.0);
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto av = a.values();
  for (int i = 0; i < n_; ++i) {
    for (auto k = arp[static_cast<std::size_t>(i)];
         k < arp[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = aci[static_cast<std::size_t>(k)];
      if (c < n_) {
        col_idx_.push_back(c);
        values_.push_back(av[static_cast<std::size_t>(k)]);
        if (c == i) {
          diag_[static_cast<std::size_t>(i)] = av[static_cast<std::size_t>(k)];
        }
      }
    }
    row_ptr_[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(col_idx_.size());
    HETERO_REQUIRE(diag_[static_cast<std::size_t>(i)] != 0.0,
                   "SSOR hit a zero diagonal");
  }
}

void SsorPreconditioner::apply(const la::DistVector& r,
                               la::DistVector& z) const {
  HETERO_REQUIRE(r.owned_count() == n_ && z.owned_count() == n_,
                 "SSOR preconditioner size mismatch");
  const double w = omega_;
  // Forward sweep: (D/w + L) y = r.
  for (int i = 0; i < n_; ++i) {
    double acc = r[i];
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (c < i) {
        acc -= values_[static_cast<std::size_t>(k)] * z[c];
      }
    }
    z[i] = acc * w / diag_[static_cast<std::size_t>(i)];
  }
  // Scale by D/w x (2-w)/w  ->  z = ((2-w)/w) D z ... combined below.
  for (int i = 0; i < n_; ++i) {
    z[i] *= (2.0 - w) / w * diag_[static_cast<std::size_t>(i)];
  }
  // Backward sweep: (D/w + U) z = y~.
  for (int i = n_ - 1; i >= 0; --i) {
    double acc = z[i];
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (c > i) {
        acc -= values_[static_cast<std::size_t>(k)] * z[c];
      }
    }
    z[i] = acc * w / diag_[static_cast<std::size_t>(i)];
  }
}

void Ilu0Preconditioner::build(const la::DistCsrMatrix& matrix) {
  // Extract the owned square block (drop ghost columns).
  const la::CsrMatrix& a = matrix.local();
  n_ = a.rows();
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  col_idx_.clear();
  values_.clear();
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto av = a.values();
  for (int i = 0; i < n_; ++i) {
    for (auto k = arp[static_cast<std::size_t>(i)];
         k < arp[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = aci[static_cast<std::size_t>(k)];
      if (c < n_) {
        col_idx_.push_back(c);
        values_.push_back(av[static_cast<std::size_t>(k)]);
      }
    }
    row_ptr_[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(col_idx_.size());
  }

  // Diagonal slots (must exist for a factorizable block).
  diag_slot_.assign(static_cast<std::size_t>(n_), -1);
  for (int i = 0; i < n_; ++i) {
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      if (col_idx_[static_cast<std::size_t>(k)] == i) {
        diag_slot_[static_cast<std::size_t>(i)] = k;
        break;
      }
    }
    HETERO_REQUIRE(diag_slot_[static_cast<std::size_t>(i)] >= 0,
                   "ILU(0): local block is missing a diagonal entry");
  }

  // In-place IKJ ILU(0). `where[c]` maps a column to its slot in row i.
  std::vector<std::int64_t> where(static_cast<std::size_t>(n_), -1);
  for (int i = 0; i < n_; ++i) {
    const auto begin = row_ptr_[static_cast<std::size_t>(i)];
    const auto end = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (auto k = begin; k < end; ++k) {
      where[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] =
          k;
    }
    for (auto k = begin; k < end; ++k) {
      const int kc = col_idx_[static_cast<std::size_t>(k)];
      if (kc >= i) {
        break;  // columns are sorted; lower part done
      }
      const double ukk =
          values_[static_cast<std::size_t>(diag_slot_[static_cast<std::size_t>(kc)])];
      HETERO_REQUIRE(std::fabs(ukk) > 1e-300, "ILU(0) hit a zero pivot");
      const double lik = values_[static_cast<std::size_t>(k)] / ukk;
      values_[static_cast<std::size_t>(k)] = lik;
      // Row update: a_i* -= l_ik * u_k* for stored positions only.
      for (auto kk = diag_slot_[static_cast<std::size_t>(kc)] + 1;
           kk < row_ptr_[static_cast<std::size_t>(kc) + 1]; ++kk) {
        const int c = col_idx_[static_cast<std::size_t>(kk)];
        const auto slot = where[static_cast<std::size_t>(c)];
        if (slot >= 0) {
          values_[static_cast<std::size_t>(slot)] -=
              lik * values_[static_cast<std::size_t>(kk)];
        }
      }
    }
    for (auto k = begin; k < end; ++k) {
      where[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] =
          -1;
    }
  }
}

void Ilu0Preconditioner::apply(const la::DistVector& r,
                               la::DistVector& z) const {
  HETERO_REQUIRE(r.owned_count() == n_ && z.owned_count() == n_,
                 "ILU(0) preconditioner size mismatch");
  // Forward solve L y = r (unit diagonal).
  for (int i = 0; i < n_; ++i) {
    double acc = r[i];
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const int c = col_idx_[static_cast<std::size_t>(k)];
      if (c >= i) {
        break;
      }
      acc -= values_[static_cast<std::size_t>(k)] * z[c];
    }
    z[i] = acc;
  }
  // Backward solve U z = y.
  for (int i = n_ - 1; i >= 0; --i) {
    double acc = z[i];
    const auto dslot = diag_slot_[static_cast<std::size_t>(i)];
    for (auto k = dslot + 1; k < row_ptr_[static_cast<std::size_t>(i) + 1];
         ++k) {
      acc -= values_[static_cast<std::size_t>(k)] *
             z[col_idx_[static_cast<std::size_t>(k)]];
    }
    z[i] = acc / values_[static_cast<std::size_t>(dslot)];
  }
}

std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name) {
  if (name == "identity") {
    return std::make_unique<IdentityPreconditioner>();
  }
  if (name == "jacobi") {
    return std::make_unique<JacobiPreconditioner>();
  }
  if (name == "ssor") {
    return std::make_unique<SsorPreconditioner>();
  }
  if (name == "ilu0") {
    return std::make_unique<Ilu0Preconditioner>();
  }
  throw Error("unknown preconditioner: " + name);
}

}  // namespace hetero::solvers
