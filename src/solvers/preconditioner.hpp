#pragma once

/// \file preconditioner.hpp
/// Preconditioners for the distributed Krylov solvers. All of them act on
/// the rank-local block only (no communication in apply), which makes every
/// choice a one-level domain-decomposition method:
///   * Jacobi           — diagonal scaling;
///   * Ilu0             — ILU(0) of the local owned×owned block, i.e.
///                        block-Jacobi/additive-Schwarz with zero overlap,
///                        the Ifpack default the paper's solver stack uses.
/// The paper times preconditioner construction as its own phase (step iiia);
/// `build()` is that phase.

#include <memory>
#include <string>
#include <vector>

#include "la/dist_matrix.hpp"

namespace hetero::solvers {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// (Re)computes the preconditioner from the current matrix values.
  virtual void build(const la::DistCsrMatrix& matrix) = 0;

  /// z = M^{-1} r over owned entries; must not communicate.
  virtual void apply(const la::DistVector& r, la::DistVector& z) const = 0;

  virtual std::string name() const = 0;
};

/// z = r.
class IdentityPreconditioner final : public Preconditioner {
 public:
  void build(const la::DistCsrMatrix& matrix) override;
  void apply(const la::DistVector& r, la::DistVector& z) const override;
  std::string name() const override { return "identity"; }

 private:
  int rows_ = 0;
};

/// Diagonal scaling.
class JacobiPreconditioner final : public Preconditioner {
 public:
  void build(const la::DistCsrMatrix& matrix) override;
  void apply(const la::DistVector& r, la::DistVector& z) const override;
  std::string name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

/// SSOR (symmetric successive over-relaxation) of the local owned block:
/// M^{-1} = w(2-w) (D + wU)^{-1} D (D + wL)^{-1}. With w = 1 this is
/// symmetric Gauss-Seidel — cheaper to build than ILU(0) (no factorization)
/// at the price of more Krylov iterations; the ablation bench quantifies
/// the trade-off.
class SsorPreconditioner final : public Preconditioner {
 public:
  explicit SsorPreconditioner(double omega = 1.0);
  void build(const la::DistCsrMatrix& matrix) override;
  void apply(const la::DistVector& r, la::DistVector& z) const override;
  std::string name() const override { return "ssor"; }

 private:
  double omega_;
  int n_ = 0;
  // Local square block in CSR plus diagonal slots (like ILU0, unfactored).
  std::vector<std::int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
  std::vector<double> diag_;
  // Fast-mode rebuild plan: the block structure over a frozen matrix
  // pattern is static, so repeat build()s only gather fresh values through
  // these source-slot lists (see docs/kernels.md).
  const std::int64_t* src_pattern_ = nullptr;
  std::vector<std::int64_t> src_slot_;
  std::vector<std::int64_t> diag_src_slot_;
};

/// ILU(0) of the local owned block.
class Ilu0Preconditioner final : public Preconditioner {
 public:
  void build(const la::DistCsrMatrix& matrix) override;
  void apply(const la::DistVector& r, la::DistVector& z) const override;
  std::string name() const override { return "ilu0"; }

 private:
  void factorize();
  void factorize_ikj(bool record);

  // Factorization stored in one CSR image of the local square block:
  // strictly-lower entries hold L (unit diagonal implicit), diagonal and
  // upper hold U.
  int n_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
  std::vector<std::int64_t> diag_slot_;
  // Fast-mode rebuild plan over a frozen matrix pattern: repeat build()s
  // gather values through src_slot_ and refactorize in place instead of
  // re-extracting the block; where_ is the persistent IKJ scratch.
  const std::int64_t* src_pattern_ = nullptr;
  std::vector<std::int64_t> src_slot_;
  std::vector<std::int64_t> where_;
  // Recorded IKJ schedule (fast mode): the elimination is a fixed sequence
  // of slot operations for a fixed pattern, so refactorizations replay it —
  // identical arithmetic, no column-map scatter or stored-position probing.
  // pivot p divides slot pivot_slot_[p] by slot pivot_diag_[p], then
  // applies upd_dst_[j] -= l * upd_src_[j] for its pivot_ptr_ range.
  bool sched_built_ = false;
  std::vector<std::int32_t> pivot_slot_;
  std::vector<std::int32_t> pivot_diag_;
  std::vector<std::int64_t> pivot_ptr_;
  std::vector<std::int32_t> upd_dst_;
  std::vector<std::int32_t> upd_src_;
};

/// Factory by name: "identity", "jacobi", "ssor", "ilu0".
std::unique_ptr<Preconditioner> make_preconditioner(const std::string& name);

}  // namespace hetero::solvers
